"""Tests for bounded formal verification (ALU-level and pipeline-level)."""

import pytest

from repro import atoms
from repro.errors import SpecificationError
from repro.hardware import PipelineSpec
from repro.chipmunk import MachineCodeBuilder
from repro.machine_code import naming
from repro.programs import get_program
from repro.programs.variants import make_sampling_variant, make_threshold_variant
from repro.testing import FunctionSpecification
from repro.verification import (
    check_alu_against_reference,
    check_alu_equivalence,
    check_bounded_equivalence,
    check_optimization_equivalence,
    enumerate_traces,
    specialized_source,
)


class TestALUEquivalence:
    def test_raw_atom_matches_reference(self):
        spec = atoms.get_atom("raw")
        holes = {"opt_0": 0, "mux3_0": 0, "const_0": 0}

        def reference(operands, state):
            old = state[0]
            state[0] = state[0] + operands[0]
            return old

        result = check_alu_against_reference(
            spec, holes, reference, operand_domain=range(6), state_domain=range(6)
        )
        assert result.equivalent
        assert result.cases_checked == 6 * 6 * 6  # two operands x one state variable

    def test_counterexample_found_for_wrong_reference(self):
        spec = atoms.get_atom("raw")
        holes = {"opt_0": 0, "mux3_0": 0, "const_0": 0}

        def wrong_reference(operands, state):
            old = state[0]
            state[0] = state[0] + operands[0] + 1  # off by one
            return old

        result = check_alu_against_reference(
            spec, holes, wrong_reference, operand_domain=range(3), state_domain=range(3)
        )
        assert not result.equivalent
        assert result.counterexample is not None
        assert "expected" in result.describe()

    def test_same_behaviour_on_different_atoms_proven_equivalent(self):
        """A pred_raw configured with an always-true guard equals a raw accumulator."""
        raw = atoms.get_atom("raw")
        pred = atoms.get_atom("pred_raw")
        raw_holes = {"opt_0": 0, "mux3_0": 0, "const_0": 0}
        pred_holes = {
            "opt_0": 1, "const_0": 0, "mux3_0": 2, "rel_op_0": 5,   # 0 >= 0: always true
            "opt_1": 0, "const_1": 0, "mux3_1": 0, "arith_op_0": 0,  # state += pkt_0
        }
        result = check_alu_equivalence(
            pred, pred_holes, raw, raw_holes, operand_domain=range(5), state_domain=range(5)
        )
        assert result.equivalent

    def test_differently_configured_atoms_not_equivalent(self):
        raw = atoms.get_atom("raw")
        add_holes = {"opt_0": 0, "mux3_0": 0, "const_0": 0}       # state += pkt_0
        overwrite_holes = {"opt_0": 1, "mux3_0": 0, "const_0": 0}  # state = pkt_0
        result = check_alu_equivalence(
            raw, add_holes, raw, overwrite_holes, operand_domain=range(4), state_domain=range(4)
        )
        assert not result.equivalent

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(SpecificationError):
            check_alu_equivalence(
                atoms.get_atom("raw"), {}, atoms.get_atom("pair"), {}, operand_domain=range(2)
            )

    def test_domain_size_guard(self):
        spec = atoms.get_atom("raw")
        with pytest.raises(SpecificationError):
            check_alu_against_reference(
                spec, {"opt_0": 0, "mux3_0": 0, "const_0": 0},
                lambda operands, state: 0,
                operand_domain=range(1000), state_domain=range(1000), max_cases=100,
            )

    def test_specialized_source_is_hole_free_dsl(self):
        spec = atoms.get_atom("if_else_raw")
        holes = {hole: 0 for hole in spec.holes}
        text = specialized_source(spec, holes)
        assert "C()" not in text and "Mux3" not in text
        assert text.startswith("type: stateful")


class TestBoundedPipelineEquivalence:
    def test_sampling_variant_proven_on_bounded_domain(self):
        program = make_sampling_variant(3)
        result = check_bounded_equivalence(
            program.pipeline_spec(),
            program.machine_code(),
            program.specification(),
            value_domain=[0, 1],
            trace_length=4,
            initial_state=program.initial_pipeline_state(),
        )
        assert result.verified
        assert result.traces_checked == (2 ** 1) ** 4
        assert "PROVEN" in result.describe()

    def test_threshold_program_with_wrong_constant_refuted(self):
        program = make_threshold_variant(3, machine_code_threshold=1)
        result = check_bounded_equivalence(
            program.pipeline_spec(),
            program.machine_code(),
            program.specification(),
            value_domain=[0, 2, 4],
            trace_length=1,
        )
        assert not result.verified
        assert result.counterexample_trace == [[2]]
        assert "REFUTED" in result.describe()

    def test_snap_heavy_hitter_bounded_proof(self):
        program = get_program("snap_heavy_hitter")
        result = check_bounded_equivalence(
            program.pipeline_spec(),
            program.machine_code(),
            program.specification(),
            value_domain=[0, 1, 7],
            trace_length=3,
            initial_state=program.initial_pipeline_state(),
        )
        assert result.verified

    def test_wrong_specification_refuted_with_counterexample(self):
        spec = PipelineSpec(
            depth=1, width=1,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="bounded",
        )
        builder = MachineCodeBuilder(spec)
        builder.configure_stateless_full(0, 0, mode="arith", op="+", a=("pkt", 0), b=("const", 1),
                                         input_containers=[0, 0])
        builder.route_output(0, 0, kind=naming.STATELESS, slot=0)
        wrong_spec = FunctionSpecification(
            function=lambda phv, state: [phv[0] + 2], num_containers=1, relevant_containers=[0]
        )
        result = check_bounded_equivalence(
            spec, builder.build(), wrong_spec, value_domain=[0, 1, 2], trace_length=1
        )
        assert not result.verified
        assert result.counterexample_report.first_mismatch.expected == 2

    def test_domain_guards(self):
        program = get_program("snap_heavy_hitter")
        with pytest.raises(SpecificationError):
            check_bounded_equivalence(
                program.pipeline_spec(), program.machine_code(), program.specification(),
                value_domain=[], trace_length=1,
            )
        with pytest.raises(SpecificationError):
            check_bounded_equivalence(
                program.pipeline_spec(), program.machine_code(), program.specification(),
                value_domain=range(100), trace_length=4, max_traces=10,
            )

    def test_enumerate_traces_counts(self):
        traces = list(enumerate_traces([0, 1], width=2, trace_length=2))
        assert len(traces) == (2 ** 2) ** 2
        assert traces[0] == [[0, 0], [0, 0]]


class TestOptimizationEquivalenceProof:
    def test_levels_agree_on_bounded_domain(self):
        program = get_program("sampling")
        result = check_optimization_equivalence(
            program.pipeline_spec(),
            program.machine_code(),
            value_domain=[0, 5],
            trace_length=3,
            initial_state=program.initial_pipeline_state(),
        )
        assert result.verified
        assert result.traces_checked == (2 ** 1) ** 3
