"""Unit tests for the sketch and the CEGIS synthesis engine."""

import random

import pytest

from repro import atoms
from repro.chipmunk import (
    ChipmunkCompiler,
    Sketch,
    SynthesisConfig,
    SynthesisEngine,
    program_constant_pool,
)
from repro.domino import PacketLayout, parse_and_analyze
from repro.errors import SynthesisError
from repro.hardware import PipelineSpec
from repro.machine_code import naming
from repro.testing import FunctionSpecification


def tiny_pipeline(stateful="raw", stateless="stateless_rel"):
    return PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom(stateful),
        stateless_alu=atoms.get_atom(stateless),
        name="synthesis_test",
    )


def frozen_routing(spec, route_kind, route_slot=0):
    freeze = {naming.output_mux_name(0, 0): spec.output_mux_value_for(route_kind, route_slot)}
    for kind, alu in ((naming.STATEFUL, spec.stateful_alu), (naming.STATELESS, spec.stateless_alu)):
        for operand in range(alu.num_operands):
            freeze[naming.input_mux_name(0, kind, 0, operand)] = 0
    return freeze


class TestSketch:
    def test_space_size_and_domains(self):
        spec = tiny_pipeline()
        sketch = Sketch.from_pipeline(spec, constant_pool=[0, 1, 2])
        assert sketch.space_size() > 1
        assert set(sketch.search_names) == set(spec.expected_machine_code_names())
        for name in sketch.search_names:
            # Width-1 input muxes have a single choice; everything else has more.
            assert len(sketch.domains[name]) >= 1

    def test_constant_pool_used_for_immediates(self):
        spec = tiny_pipeline()
        sketch = Sketch.from_pipeline(spec, constant_pool=[3, 9, 27])
        const_name = naming.alu_hole_name(0, naming.STATEFUL, 0, "const_0")
        assert sketch.domains[const_name] == [3, 9, 27]

    def test_empty_constant_pool_rejected(self):
        with pytest.raises(SynthesisError):
            Sketch.from_pipeline(tiny_pipeline(), constant_pool=[])

    def test_negative_constant_rejected(self):
        with pytest.raises(SynthesisError):
            Sketch.from_pipeline(tiny_pipeline(), constant_pool=[-1, 3])

    def test_freeze_removes_from_search(self):
        spec = tiny_pipeline()
        freeze = frozen_routing(spec, naming.STATEFUL)
        sketch = Sketch.from_pipeline(spec, freeze=freeze)
        assert not (set(freeze) & set(sketch.search_names))
        machine_code = sketch.to_machine_code(sketch.zero_assignment())
        for name, value in freeze.items():
            assert machine_code[name] == value

    def test_unknown_freeze_name_rejected(self):
        with pytest.raises(SynthesisError):
            Sketch.from_pipeline(tiny_pipeline(), freeze={"bogus": 1})

    def test_unknown_search_name_rejected(self):
        with pytest.raises(SynthesisError):
            Sketch.from_pipeline(tiny_pipeline(), search_names=["bogus"])

    def test_assignment_round_trip(self):
        spec = tiny_pipeline()
        sketch = Sketch.from_pipeline(spec, constant_pool=[0, 5])
        rng = random.Random(0)
        assignment = sketch.random_assignment(rng)
        machine_code = sketch.to_machine_code(assignment)
        assert spec.validate_machine_code(machine_code) == []

    def test_wrong_assignment_length_rejected(self):
        sketch = Sketch.from_pipeline(tiny_pipeline())
        with pytest.raises(SynthesisError):
            sketch.to_machine_code([0])

    def test_enumerate_small_space(self):
        spec = tiny_pipeline()
        names = [naming.alu_hole_name(0, naming.STATEFUL, 0, "opt_0"),
                 naming.alu_hole_name(0, naming.STATEFUL, 0, "mux3_0")]
        sketch = Sketch.from_pipeline(spec, search_names=names)
        assignments = list(sketch.enumerate_assignments())
        assert len(assignments) == sketch.space_size() == 2 * 3
        assert len({tuple(a) for a in assignments}) == len(assignments)

    def test_mutate_changes_at_most_requested_positions(self):
        sketch = Sketch.from_pipeline(tiny_pipeline())
        rng = random.Random(1)
        base = sketch.zero_assignment()
        mutated = sketch.mutate(base, rng, positions=1)
        differing = sum(1 for a, b in zip(base, mutated) if a != b)
        assert differing <= 1


class TestSynthesisEngine:
    def test_synthesizes_accumulator(self):
        """CEGIS finds machine code for 'output old total; total += value'."""
        spec = tiny_pipeline()
        freeze = frozen_routing(spec, naming.STATEFUL)
        search = [naming.alu_hole_name(0, naming.STATEFUL, 0, hole)
                  for hole in atoms.get_atom("raw").holes]

        def accumulate(phv, state):
            old = state["total"]
            state["total"] += phv[0]
            return [old]

        specification = FunctionSpecification(
            function=accumulate, num_containers=1, state_template={"total": 0},
            relevant_containers=[0],
        )
        sketch = Sketch.from_pipeline(spec, constant_pool=[0, 1], freeze=freeze, search_names=search)
        engine = SynthesisEngine(spec, specification, sketch, SynthesisConfig(seed=3))
        result = engine.synthesize()
        assert result.success
        # The raw atom must keep its old state (opt_0 = 0 -> use state) and add
        # the packet operand (mux3_0 selects pkt_0).
        assert result.machine_code[search[0]] % 2 == 0
        assert result.machine_code[naming.alu_hole_name(0, naming.STATEFUL, 0, "mux3_0")] % 3 == 0

    def test_synthesizes_threshold_comparison(self):
        spec = tiny_pipeline(stateless="stateless_rel")
        freeze = frozen_routing(spec, naming.STATELESS)
        search = [naming.alu_hole_name(0, naming.STATELESS, 0, hole)
                  for hole in atoms.get_atom("stateless_rel").holes]
        specification = FunctionSpecification(
            function=lambda phv, state: [1 if phv[0] > 50 else 0],
            num_containers=1,
            relevant_containers=[0],
        )
        sketch = Sketch.from_pipeline(spec, constant_pool=[0, 50, 51], freeze=freeze, search_names=search)
        engine = SynthesisEngine(spec, specification, sketch,
                                 SynthesisConfig(seed=5, example_max_value=200))
        result = engine.synthesize()
        assert result.success
        assert result.candidates_evaluated > 0

    def test_unsatisfiable_sketch_reports_failure(self):
        """With every pair frozen to pass-through, no assignment can match the spec."""
        spec = tiny_pipeline()
        freeze = spec.passthrough_machine_code().as_dict()
        sketch = Sketch.from_pipeline(spec, freeze=freeze, search_names=[])
        specification = FunctionSpecification(
            function=lambda phv, state: [phv[0] + 1],
            num_containers=1,
            relevant_containers=[0],
        )
        engine = SynthesisEngine(spec, specification, sketch, SynthesisConfig(seed=0))
        result = engine.synthesize()
        assert not result.success

    def test_narrow_training_range_reproduces_value_range_failure(self):
        """Synthesis verified only on tiny inputs yields machine code that fails at 10 bits."""
        spec = tiny_pipeline(stateless="stateless_rel")
        freeze = frozen_routing(spec, naming.STATELESS)
        search = [naming.alu_hole_name(0, naming.STATELESS, 0, hole)
                  for hole in atoms.get_atom("stateless_rel").holes]
        specification = FunctionSpecification(
            function=lambda phv, state: [1 if phv[0] > 300 else 0],
            num_containers=1,
            relevant_containers=[0],
        )
        sketch = Sketch.from_pipeline(
            spec, constant_pool=[0, 1, 5, 10], freeze=freeze, search_names=search
        )
        engine = SynthesisEngine(
            spec, specification, sketch,
            SynthesisConfig(seed=1, example_max_value=10, verify_max_value=10, max_iterations=2),
        )
        result = engine.synthesize()
        assert result.machine_code is not None
        from repro.testing import FuzzConfig, FuzzTester

        tester = FuzzTester(spec, specification, config=FuzzConfig(num_phvs=500, seed=9))
        outcome = tester.test(result.machine_code)
        assert not outcome.passed


class TestChipmunkCompiler:
    def test_constant_pool_extraction(self):
        program = parse_and_analyze(
            "state x = 7; transaction t { if (pkt.a == 9) { x = x + 3; } else { pkt.o = 0; } }"
        )
        pool = program_constant_pool(program)
        assert {9, 3, 7, 0, 1} <= set(pool)
        assert 8 in pool and 10 in pool  # neighbours of 9

    def test_compile_domino_accumulator(self):
        spec = tiny_pipeline()
        freeze = frozen_routing(spec, naming.STATEFUL)
        search = [naming.alu_hole_name(0, naming.STATEFUL, 0, hole)
                  for hole in atoms.get_atom("raw").holes]
        source = """
        state total = 0;
        transaction accumulator {
            pkt.out = total;
            total = total + pkt.value;
        }
        """
        layout = PacketLayout(container_fields=["value"], output_fields=["out"])
        compiler = ChipmunkCompiler(spec, SynthesisConfig(seed=2))
        result = compiler.compile_domino(source, layout, freeze=freeze, search_names=search,
                                         validate=True)
        assert result.success
        assert result.fuzz_outcome is not None and result.fuzz_outcome.passed

    def test_layout_width_mismatch_rejected(self):
        spec = tiny_pipeline()
        layout = PacketLayout(container_fields=["a", "b"], output_fields=[None, None])
        with pytest.raises(SynthesisError):
            ChipmunkCompiler(spec).compile_domino(
                "transaction t { pkt.o = pkt.a; }", layout
            )
