"""Unit tests for the pipeline hardware specification."""

import pytest

from repro import atoms
from repro.errors import CodegenError
from repro.hardware import PipelineSpec, describe_pipeline, make_pipeline_spec
from repro.machine_code import naming


def make_spec(depth=2, width=2, stateful="if_else_raw", stateless="stateless_full"):
    return PipelineSpec(
        depth=depth,
        width=width,
        stateful_alu=atoms.get_atom(stateful),
        stateless_alu=atoms.get_atom(stateless),
        name="spec_under_test",
    )


class TestValidation:
    def test_zero_depth_rejected(self):
        with pytest.raises(CodegenError):
            make_spec(depth=0)

    def test_zero_width_rejected(self):
        with pytest.raises(CodegenError):
            make_spec(width=0)

    def test_stateful_slot_requires_stateful_atom(self):
        with pytest.raises(CodegenError):
            PipelineSpec(
                depth=1,
                width=1,
                stateful_alu=atoms.get_atom("stateless_full"),
                stateless_alu=atoms.get_atom("stateless_full"),
            )

    def test_stateless_slot_requires_stateless_atom(self):
        with pytest.raises(CodegenError):
            PipelineSpec(
                depth=1,
                width=1,
                stateful_alu=atoms.get_atom("raw"),
                stateless_alu=atoms.get_atom("raw"),
            )


class TestGeometry:
    def test_num_containers_equals_width(self):
        assert make_spec(width=5).num_containers == 5

    def test_num_state_vars_from_atom(self):
        assert make_spec(stateful="pair").num_state_vars == 2
        assert make_spec(stateful="raw").num_state_vars == 1

    def test_output_mux_choices(self):
        assert make_spec(width=3).output_mux_choices == 7

    def test_output_mux_values(self):
        spec = make_spec(width=2)
        assert spec.output_mux_value_for(naming.STATELESS, 0) == 0
        assert spec.output_mux_value_for(naming.STATELESS, 1) == 1
        assert spec.output_mux_value_for(naming.STATEFUL, 0) == 2
        assert spec.output_mux_value_for(naming.STATEFUL, 1) == 3
        assert spec.passthrough_value == 4

    def test_output_mux_value_out_of_range_slot(self):
        with pytest.raises(CodegenError):
            make_spec(width=2).output_mux_value_for(naming.STATEFUL, 5)

    def test_output_mux_value_bad_kind(self):
        with pytest.raises(CodegenError):
            make_spec().output_mux_value_for("weird", 0)


class TestMachineCodeContract:
    def test_expected_names_scale_with_geometry(self):
        small = len(make_spec(depth=1, width=1).expected_machine_code_names())
        large = len(make_spec(depth=4, width=5).expected_machine_code_names())
        assert large == 20 * small  # 4*5 ALU groups vs 1, plus proportional output muxes

    def test_passthrough_machine_code_is_complete(self):
        spec = make_spec()
        mc = spec.passthrough_machine_code()
        assert spec.validate_machine_code(mc) == []

    def test_passthrough_output_muxes_select_passthrough(self):
        spec = make_spec(width=3)
        mc = spec.passthrough_machine_code()
        for stage in range(spec.depth):
            for container in range(spec.width):
                assert mc[naming.output_mux_name(stage, container)] == spec.passthrough_value

    def test_validate_machine_code_reports_missing(self):
        spec = make_spec()
        mc = spec.passthrough_machine_code().without([naming.output_mux_name(0, 0)])
        assert spec.validate_machine_code(mc) == [naming.output_mux_name(0, 0)]

    def test_hole_domains_cover_every_pair(self):
        spec = make_spec(depth=1, width=2)
        domains = spec.hole_domains()
        assert set(domains) == set(spec.expected_machine_code_names())
        assert domains[naming.input_mux_name(0, naming.STATEFUL, 0, 0)] == 2
        assert domains[naming.output_mux_name(0, 1)] == spec.output_mux_choices


class TestHelpers:
    def test_describe_pipeline_mentions_geometry(self):
        text = describe_pipeline(make_spec(depth=3, width=4))
        assert "depth=3" in text
        assert "width=4" in text

    def test_make_pipeline_spec_defaults_stateless(self):
        spec = make_pipeline_spec(2, 2, atoms.get_atom("raw"))
        assert spec.stateless_alu.name == "stateless_full"
        assert spec.depth == 2
