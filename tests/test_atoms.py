"""Unit tests for the Banzai atom catalogue and its semantics."""

import pytest

from repro import atoms
from repro.alu_dsl import ALUInterpreter
from repro.errors import ALUDSLError


class TestCatalogue:
    def test_counts_match_paper(self):
        """Paper §3.1: 5 stateless and 6 stateful ALUs."""
        assert len(atoms.stateful_catalog()) == 6
        assert len(atoms.stateless_catalog()) == 5

    def test_expected_atom_names_present(self):
        names = set(atoms.atom_names())
        assert {"raw", "if_else_raw", "pred_raw", "sub", "pair", "nested_if"} <= names
        assert {"stateless_arith", "stateless_rel", "stateless_mux", "stateless_const",
                "stateless_full"} <= names

    def test_table1_atoms_all_exist(self):
        """Every ALU name appearing in Table 1 is in the catalogue."""
        for name in ("sub", "pair", "if_else_raw", "pred_raw", "raw"):
            assert atoms.get_atom(name).is_stateful

    def test_get_atom_unknown_name(self):
        with pytest.raises(ALUDSLError):
            atoms.get_atom("quantum_alu")

    def test_atom_source_returns_text(self):
        assert "type: stateful" in atoms.atom_source("raw")
        with pytest.raises(ALUDSLError):
            atoms.atom_source("quantum_alu")

    def test_catalog_returns_fresh_dict(self):
        catalog = atoms.stateful_catalog()
        catalog.clear()
        assert atoms.stateful_catalog()  # cache unaffected by caller mutation

    def test_stateful_atoms_have_two_operands(self):
        for name, spec in atoms.stateful_catalog().items():
            assert spec.num_operands == 2, name

    def test_pair_has_two_state_vars_others_one(self):
        for name, spec in atoms.stateful_catalog().items():
            expected = 2 if name == "pair" else 1
            assert spec.num_state_vars == expected


def run_atom(name, operands, state, holes):
    spec = atoms.get_atom(name)
    return ALUInterpreter(spec).execute(operands, state, holes)


class TestRawSemantics:
    def test_accumulate_packet_value(self):
        result = run_atom("raw", [7, 0], [10], {"opt_0": 0, "mux3_0": 0, "const_0": 0})
        assert result.state == [17]
        assert result.output == 10  # old state

    def test_overwrite_with_constant(self):
        result = run_atom("raw", [7, 0], [10], {"opt_0": 1, "mux3_0": 2, "const_0": 99})
        assert result.state == [99]


class TestIfElseRawSemantics:
    HOLES = {
        "opt_0": 0, "const_0": 9, "mux3_0": 2, "rel_op_0": 0,   # if state == 9
        "opt_1": 1, "const_1": 0, "mux3_1": 2,                   # then state = 0
        "opt_2": 0, "const_2": 1, "mux3_2": 2,                   # else state = state + 1
    }

    def test_wrapping_counter_increments(self):
        result = run_atom("if_else_raw", [0, 0], [3], self.HOLES)
        assert result.state == [4]
        assert result.output == 3

    def test_wrapping_counter_resets(self):
        result = run_atom("if_else_raw", [0, 0], [9], self.HOLES)
        assert result.state == [0]
        assert result.output == 9


class TestPredRawSemantics:
    def test_update_only_when_predicate_holds(self):
        holes = {
            "opt_0": 0, "const_0": 0, "mux3_0": 0, "rel_op_0": 1,  # if state < pkt_0
            "opt_1": 1, "const_1": 0, "mux3_1": 0, "arith_op_0": 0,  # state = 0 + pkt_0
        }
        grew = run_atom("pred_raw", [50, 0], [10], holes)
        assert grew.state == [50]
        unchanged = run_atom("pred_raw", [5, 0], [10], holes)
        assert unchanged.state == [10]


class TestSubSemantics:
    def test_subtraction_branch(self):
        holes = {
            "opt_0": 0, "const_0": 0, "mux3_0": 2, "rel_op_0": 2,      # if state > 0
            "opt_1": 0, "const_1": 4, "mux3_1": 2, "arith_op_0": 1,    # state = state - 4
            "opt_2": 0, "const_2": 0, "mux3_2": 2, "arith_op_1": 0,    # else unchanged
        }
        assert run_atom("sub", [0, 0], [10], holes).state == [6]
        assert run_atom("sub", [0, 0], [0], holes).state == [0]


class TestPairSemantics:
    ALWAYS_TRUE = {
        "mux2_0": 0, "const_0": 0, "mux3_0": 0, "rel_op_0": 0, "const_1": 1, "mux2_1": 1,
        "mux2_2": 0, "const_2": 0, "mux3_1": 0, "rel_op_1": 0, "const_3": 1, "mux2_3": 1,
        "bool_op_0": 0,
    }
    KEEP_ELSE = {
        "const_8": 0, "mux3_6": 0, "const_9": 0, "mux3_7": 2, "arith_op_2": 0,
        "const_10": 0, "mux3_8": 1, "const_11": 0, "mux3_9": 2, "arith_op_3": 0,
    }

    def test_dual_counter_update(self):
        holes = dict(self.ALWAYS_TRUE)
        holes.update({
            # state_0 = state_0 + 1
            "const_4": 0, "mux3_2": 0, "const_5": 1, "mux3_3": 2, "arith_op_0": 0,
            # state_1 = state_1 + pkt_0
            "const_6": 0, "mux3_4": 1, "const_7": 0, "mux3_5": 0, "arith_op_1": 0,
        })
        holes.update(self.KEEP_ELSE)
        result = run_atom("pair", [33, 0], [5, 100], holes)
        assert result.state == [6, 133]
        assert result.output == 5

    def test_condition_gates_updates(self):
        holes = dict(self.ALWAYS_TRUE)
        # Condition 0: state_0 > pkt_0, condition 1 forced true, combined with &&.
        holes.update({"mux2_1": 0, "mux2_0": 0, "mux3_0": 0, "rel_op_0": 2})
        holes.update({
            "const_4": 0, "mux3_2": 2, "const_5": 0, "mux3_3": 0, "arith_op_0": 0,  # state_0 = pkt_0
            "const_6": 0, "mux3_4": 2, "const_7": 0, "mux3_5": 1, "arith_op_1": 0,  # state_1 = pkt_1
        })
        holes.update(self.KEEP_ELSE)
        taken = run_atom("pair", [3, 44], [10, 0], holes)
        assert taken.state == [3, 44]
        not_taken = run_atom("pair", [30, 44], [10, 0], holes)
        assert not_taken.state == [10, 0]


class TestNestedIfSemantics:
    def test_three_way_behaviour(self):
        holes = {
            "opt_0": 0, "const_0": 0, "mux3_0": 0, "rel_op_0": 1,       # if state < pkt_0
            "opt_1": 0, "const_1": 0, "mux3_1": 2, "rel_op_1": 0,       #   if state == 0
            "opt_2": 1, "const_2": 0, "mux3_2": 0, "arith_op_0": 0,     #     state = pkt_0
            "opt_3": 0, "const_3": 1, "mux3_3": 2, "arith_op_1": 0,     #   else state = state + 1
            "opt_4": 0, "const_4": 0, "mux3_4": 2, "arith_op_2": 0,     # else unchanged
        }
        assert run_atom("nested_if", [50, 0], [0], holes).state == [50]
        assert run_atom("nested_if", [50, 0], [10], holes).state == [11]
        assert run_atom("nested_if", [5, 0], [10], holes).state == [10]
