"""Unit tests for the compiler-testing workflow: specs, equivalence, fuzzing, reports."""

import pytest

from repro import atoms, dgen
from repro.chipmunk import MachineCodeBuilder
from repro.dsim import Trace, TrafficGenerator
from repro.errors import EquivalenceError, SpecificationError
from repro.hardware import PipelineSpec
from repro.machine_code import naming
from repro.testing import (
    CampaignSummary,
    FailureClass,
    FunctionSpecification,
    FuzzConfig,
    FuzzOutcome,
    FuzzTester,
    PassthroughSpecification,
    compare_traces,
    fuzz_machine_code,
)


def trace_of(records):
    trace = Trace()
    for index, (inputs, outputs) in enumerate(records):
        trace.append(index, inputs, outputs)
    return trace


class TestSpecifications:
    def test_function_specification_runs_trace(self):
        spec = FunctionSpecification(
            function=lambda phv, state: [phv[0] + state.setdefault("total", 0)],
            num_containers=1,
        )
        trace = spec.run([[1], [2], [3]])
        assert trace.outputs() == [(1,), (2,), (3,)]

    def test_function_specification_state_threading(self):
        def accumulate(phv, state):
            old = state["total"]
            state["total"] += phv[0]
            return [old]

        spec = FunctionSpecification(function=accumulate, num_containers=1, state_template={"total": 0})
        trace = spec.run([[5], [6], [7]])
        assert trace.outputs() == [(0,), (5,), (11,)]
        assert trace.spec_state == {"total": 18}

    def test_fresh_state_per_run(self):
        spec = FunctionSpecification(
            function=lambda phv, state: [state.__setitem__("n", state["n"] + 1) or state["n"]],
            num_containers=1,
            state_template={"n": 0},
        )
        assert spec.run([[0]]).outputs() == spec.run([[0]]).outputs()

    def test_container_count_mismatch_rejected(self):
        spec = FunctionSpecification(function=lambda phv, state: list(phv), num_containers=2)
        with pytest.raises(SpecificationError):
            spec.run([[1]])

    def test_wrong_output_width_rejected(self):
        spec = FunctionSpecification(function=lambda phv, state: [0], num_containers=2)
        with pytest.raises(SpecificationError):
            spec.run([[1, 2]])

    def test_passthrough_specification(self):
        spec = PassthroughSpecification(num_containers=3)
        assert spec.run([[1, 2, 3]]).outputs() == [(1, 2, 3)]


class TestEquivalence:
    def test_equivalent_traces(self):
        a = trace_of([(([1, 2]), [3, 4])])
        b = trace_of([(([1, 2]), [3, 4])])
        report = compare_traces(a, b)
        assert report.equivalent
        assert report.first_mismatch is None
        report.assert_equivalent()

    def test_mismatch_reported_with_location(self):
        pipeline = trace_of([([1], [5]), ([2], [6])])
        spec = trace_of([([1], [5]), ([2], [9])])
        report = compare_traces(pipeline, spec)
        assert not report.equivalent
        mismatch = report.first_mismatch
        assert mismatch.phv_id == 1
        assert mismatch.container == 0
        assert (mismatch.expected, mismatch.actual) == (9, 6)
        with pytest.raises(EquivalenceError):
            report.assert_equivalent()

    def test_container_restriction(self):
        pipeline = trace_of([([1, 1], [5, 100])])
        spec = trace_of([([1, 1], [5, 200])])
        assert compare_traces(pipeline, spec, containers=[0]).equivalent
        assert not compare_traces(pipeline, spec, containers=[1]).equivalent

    def test_length_mismatch_rejected(self):
        with pytest.raises(EquivalenceError):
            compare_traces(trace_of([([1], [1])]), trace_of([]))

    def test_describe_mentions_counts(self):
        pipeline = trace_of([([1], [5])])
        spec = trace_of([([1], [6])])
        text = compare_traces(pipeline, spec).describe()
        assert "1 mismatch" in text


class TestReports:
    def test_outcome_describe_per_class(self):
        assert "PASS" in FuzzOutcome(FailureClass.CORRECT, phvs_tested=10).describe()
        assert "missing" in FuzzOutcome(
            FailureClass.MISSING_MACHINE_CODE, 0, missing_pairs=["x"]
        ).describe()
        assert "limited range" in FuzzOutcome(FailureClass.VALUE_RANGE, 10, max_value=1023).describe()
        assert "mismatch" in FuzzOutcome(FailureClass.OUTPUT_MISMATCH, 10).describe()
        assert "error" in FuzzOutcome(
            FailureClass.SIMULATION_ERROR, 0, error_message="boom"
        ).describe()

    def test_campaign_summary_counts(self):
        summary = CampaignSummary()
        summary.add(FuzzOutcome(FailureClass.CORRECT, 10))
        summary.add(FuzzOutcome(FailureClass.CORRECT, 10))
        summary.add(FuzzOutcome(FailureClass.VALUE_RANGE, 10))
        assert summary.total == 3
        assert summary.passed == 2
        assert summary.failed == 1
        assert summary.count(FailureClass.VALUE_RANGE) == 1
        assert "programs tested" in summary.describe()


@pytest.fixture(scope="module")
def threshold_setup():
    """A 1x1 stateless pipeline computing flag = (value > 100) plus its spec."""
    spec = PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_full"),
        name="threshold",
    )
    builder = MachineCodeBuilder(spec)
    builder.configure_stateless_full(0, 0, mode="rel", op=">", a=("pkt", 0), b=("const", 100),
                                     input_containers=[0, 0])
    builder.route_output(0, 0, kind=naming.STATELESS, slot=0)
    machine_code = builder.build()
    specification = FunctionSpecification(
        function=lambda phv, state: [1 if phv[0] > 100 else 0],
        num_containers=1,
        relevant_containers=[0],
    )
    return spec, machine_code, specification


class TestFuzzTester:
    def test_correct_machine_code_passes(self, threshold_setup):
        spec, machine_code, specification = threshold_setup
        outcome = fuzz_machine_code(spec, machine_code, specification, num_phvs=300, seed=1)
        assert outcome.passed
        assert outcome.failure_class is FailureClass.CORRECT
        assert outcome.phvs_tested == 300

    def test_missing_pairs_detected_before_simulation(self, threshold_setup):
        spec, machine_code, specification = threshold_setup
        broken = machine_code.without([naming.output_mux_name(0, 0)])
        outcome = fuzz_machine_code(spec, broken, specification, num_phvs=100)
        assert outcome.failure_class is FailureClass.MISSING_MACHINE_CODE
        assert outcome.missing_pairs == [naming.output_mux_name(0, 0)]

    def test_value_range_failure_classified(self, threshold_setup):
        spec, _machine_code, specification = threshold_setup
        # Machine code thresholds at 50: correct for values <= 100 region only
        # where both sides agree (values <= 50 and > 100 both agree is false;
        # actually values in (50, 100] disagree) — so use spec threshold > small range.
        builder = MachineCodeBuilder(spec)
        builder.configure_stateless_full(0, 0, mode="rel", op=">", a=("pkt", 0), b=("const", 400),
                                         input_containers=[0, 0])
        builder.route_output(0, 0, kind=naming.STATELESS, slot=0)
        wrong = builder.build()
        specification_high = FunctionSpecification(
            function=lambda phv, state: [1 if phv[0] > 500 else 0],
            num_containers=1,
            relevant_containers=[0],
        )
        tester = FuzzTester(
            spec,
            specification_high,
            config=FuzzConfig(num_phvs=400, seed=3, small_max_value=100),
        )
        outcome = tester.test(wrong)
        assert outcome.failure_class is FailureClass.VALUE_RANGE

    def test_output_mismatch_classified(self, threshold_setup):
        spec, machine_code, _specification = threshold_setup
        inverted = FunctionSpecification(
            function=lambda phv, state: [0 if phv[0] > 100 else 1],
            num_containers=1,
            relevant_containers=[0],
        )
        outcome = fuzz_machine_code(spec, machine_code, inverted, num_phvs=200, seed=2)
        assert outcome.failure_class is FailureClass.OUTPUT_MISMATCH
        assert outcome.counterexample is not None

    def test_all_levels_agree(self, threshold_setup):
        spec, machine_code, specification = threshold_setup
        tester = FuzzTester(spec, specification, config=FuzzConfig(num_phvs=150, seed=5))
        outcomes = tester.test_all_levels(machine_code)
        assert set(outcomes) == set(dgen.OPT_LEVELS)
        assert all(outcome.passed for outcome in outcomes.values())

    def test_campaign_aggregates(self, threshold_setup):
        spec, machine_code, specification = threshold_setup
        broken = machine_code.without([naming.output_mux_name(0, 0)])
        tester = FuzzTester(spec, specification, config=FuzzConfig(num_phvs=100, seed=1))
        summary = tester.campaign([machine_code, broken])
        assert summary.total == 2
        assert summary.passed == 1
        assert summary.count(FailureClass.MISSING_MACHINE_CODE) == 1

    def test_custom_traffic_generator_respected(self, threshold_setup):
        spec, machine_code, specification = threshold_setup
        traffic = TrafficGenerator(num_containers=1, seed=0, min_value=0, max_value=10)
        tester = FuzzTester(
            spec, specification, config=FuzzConfig(num_phvs=100, seed=1), traffic_generator=traffic
        )
        outcome = tester.test(machine_code)
        assert outcome.passed
