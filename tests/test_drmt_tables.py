"""Unit tests for dRMT match+action tables and the table-entry configuration format."""

import pytest

from repro.drmt import (
    MatchPattern,
    TableEntry,
    TableStore,
    load_entries,
    parse_entries,
    parse_entry_line,
    populate_store,
)
from repro.errors import TableConfigError
from repro.p4 import samples


@pytest.fixture(scope="module")
def router():
    return samples.simple_router()


class TestMatchPattern:
    def test_exact(self):
        pattern = MatchPattern(kind="exact", value=42, width=16)
        assert pattern.matches(42)
        assert not pattern.matches(43)

    def test_ternary_masked_bits_ignored(self):
        pattern = MatchPattern(kind="ternary", value=0x10, mask=0xF0, width=8)
        assert pattern.matches(0x1F)
        assert not pattern.matches(0x2F)

    def test_ternary_default_mask_is_full(self):
        pattern = MatchPattern(kind="ternary", value=7, width=8)
        assert pattern.matches(7)
        assert not pattern.matches(6)

    def test_lpm_prefix(self):
        # 10.0.0.0/8 equivalent on a 32-bit field.
        pattern = MatchPattern(kind="lpm", value=10 << 24, prefix_len=8, width=32)
        assert pattern.matches((10 << 24) + 12345)
        assert not pattern.matches(11 << 24)

    def test_lpm_zero_prefix_matches_everything(self):
        pattern = MatchPattern(kind="lpm", value=0, prefix_len=0, width=32)
        assert pattern.matches(0) and pattern.matches(2**31)

    def test_specificity_ordering(self):
        narrow = MatchPattern(kind="lpm", value=0, prefix_len=16, width=32)
        wide = MatchPattern(kind="lpm", value=0, prefix_len=8, width=32)
        assert narrow.specificity > wide.specificity

    def test_unknown_kind_rejected_on_match(self):
        with pytest.raises(TableConfigError):
            MatchPattern(kind="range", value=1).matches(1)


class TestTables:
    def test_add_and_lookup(self, router):
        store = TableStore(router)
        entry = TableEntry(
            patterns={"ipv4.srcAddr": MatchPattern(kind="exact", value=42, width=32)},
            action="count_flow",
            action_args=[1],
        )
        store.add_entry("flow_stats", entry)
        hit = store["flow_stats"].lookup({"ipv4.srcAddr": 42})
        assert hit is entry
        assert store["flow_stats"].lookup({"ipv4.srcAddr": 7}) is None
        assert store["flow_stats"].hit_count == 1
        assert store["flow_stats"].miss_count == 1

    def test_longest_prefix_wins(self, router):
        store = TableStore(router)
        for value, prefix, port in ((10 << 24, 8, 1), ((10 << 24) + (1 << 16), 16, 2)):
            store.add_entry(
                "forward",
                TableEntry(
                    patterns={"ipv4.dstAddr": MatchPattern(kind="lpm", value=value, prefix_len=prefix, width=32)},
                    action="set_nhop",
                    action_args=[port],
                ),
            )
        best = store["forward"].lookup({"ipv4.dstAddr": (10 << 24) + (1 << 16) + 5})
        assert best.action_args == [2]

    def test_priority_breaks_ties(self, router):
        store = TableStore(router)
        low = TableEntry(
            patterns={"ipv4.srcAddr": MatchPattern(kind="exact", value=1, width=32)},
            action="count_flow", action_args=[1], priority=0,
        )
        high = TableEntry(
            patterns={"ipv4.srcAddr": MatchPattern(kind="exact", value=1, width=32)},
            action="count_flow", action_args=[2], priority=5,
        )
        store.add_entry("flow_stats", low)
        store.add_entry("flow_stats", high)
        assert store["flow_stats"].lookup({"ipv4.srcAddr": 1}).action_args == [2]

    def test_entry_field_set_validated(self, router):
        store = TableStore(router)
        with pytest.raises(TableConfigError):
            store.add_entry(
                "forward",
                TableEntry(patterns={"ipv4.srcAddr": MatchPattern(kind="exact", value=1, width=32)},
                           action="set_nhop"),
            )

    def test_entry_action_validated(self, router):
        store = TableStore(router)
        with pytest.raises(TableConfigError):
            store.add_entry(
                "forward",
                TableEntry(patterns={"ipv4.dstAddr": MatchPattern(kind="lpm", value=0, prefix_len=0, width=32)},
                           action="drop_packet"),
            )

    def test_table_capacity_enforced(self):
        # Parse a private copy of the program: shrinking the table size must
        # not leak into the module-scoped fixture shared by other tests.
        private = samples.simple_router()
        store = TableStore(private)
        table = store["acl"]
        table.definition.size = 1
        pattern = {
            "meta.egress_port": MatchPattern(kind="exact", value=1, width=16),
            "ipv4.protocol": MatchPattern(kind="ternary", value=0, mask=0, width=8),
        }
        store.add_entry("acl", TableEntry(patterns=dict(pattern), action="allow"))
        with pytest.raises(TableConfigError):
            store.add_entry("acl", TableEntry(patterns=dict(pattern), action="allow"))

    def test_unknown_table_rejected(self, router):
        with pytest.raises(TableConfigError):
            TableStore(router)["ghost"]


class TestEntryConfigFormat:
    def test_parse_exact_entry(self, router):
        table, entry = parse_entry_line("add flow_stats ipv4.srcAddr=42 => count_flow(3)", router)
        assert table == "flow_stats"
        assert entry.action == "count_flow"
        assert entry.action_args == [3]
        assert entry.patterns["ipv4.srcAddr"].kind == "exact"

    def test_parse_ternary_entry(self, router):
        _table, entry = parse_entry_line(
            "add acl meta.egress_port=2 ipv4.protocol=17&&&255 => drop_packet()", router
        )
        assert entry.patterns["ipv4.protocol"].kind == "ternary"
        assert entry.patterns["ipv4.protocol"].mask == 255

    def test_parse_lpm_entry(self, router):
        _table, entry = parse_entry_line(
            "add forward ipv4.dstAddr=167772160/8 => set_nhop(1)", router
        )
        assert entry.patterns["ipv4.dstAddr"].prefix_len == 8

    def test_hex_values_accepted(self, router):
        _table, entry = parse_entry_line(
            "add flow_stats ipv4.srcAddr=0x2a => count_flow(1)", router
        )
        assert entry.patterns["ipv4.srcAddr"].value == 42

    def test_no_args_action(self, router):
        _table, entry = parse_entry_line(
            "add acl meta.egress_port=1 ipv4.protocol=0&&&0 => allow()", router
        )
        assert entry.action_args == []

    def test_unknown_table_rejected(self, router):
        with pytest.raises(TableConfigError):
            parse_entry_line("add ghost ipv4.srcAddr=1 => count_flow(1)", router)

    def test_unknown_field_rejected(self, router):
        with pytest.raises(TableConfigError):
            parse_entry_line("add forward ipv4.ttl=1 => set_nhop(1)", router)

    def test_malformed_line_rejected(self, router):
        with pytest.raises(TableConfigError):
            parse_entry_line("install forward 1 -> set_nhop", router)

    def test_parse_entries_ignores_comments_and_blanks(self, router):
        text = "# comment\n\nadd flow_stats ipv4.srcAddr=1 => count_flow(1)\n// more\n"
        entries = parse_entries(text, router)
        assert len(entries) == 1

    def test_full_sample_config_parses(self, router):
        entries = parse_entries(samples.SIMPLE_ROUTER_ENTRIES, router)
        assert len(entries) == 7
        store = populate_store(TableStore(router), entries)
        assert store.total_entries() == 7

    def test_load_entries_from_file(self, router, tmp_path):
        path = tmp_path / "entries.cfg"
        path.write_text("add flow_stats ipv4.srcAddr=5 => count_flow(2)\n")
        entries = load_entries(path, router)
        assert entries[0][0] == "flow_stats"
