"""Property-based equivalence tests for the sharded meta-driver.

The sharded driver's contract is *bit-for-bit equality* with the unsharded
sequential drivers — outputs restored to input order, per-stage /
per-register state merged — whenever its state-conflict check admits a
partition, and a loud, early refusal (or, under ``engine="auto"``, a
transparent fallback) whenever it does not.  These tests pin that contract
down three ways:

* randomized flow-parallel programs, traces and shard counts (sharded ==
  generic == tick, including flows whose packets interleave arbitrarily);
* the 12 Table-1 programs under ``engine="auto"`` with sharding enabled
  (bit-for-bit whatever the driver decides, sharded or fallback);
* the conflict guard itself: programs whose state is shared across flows
  must raise a clear :class:`ShardStateConflictError` under an explicit
  ``engine="sharded"`` and silently fall back under ``engine="auto"``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import dgen
from repro.dsim import RMTSimulator
from repro.engine import ENGINE_SHARDED
from repro.engine.sharded import (
    ShardPlan,
    ShardStateConflictError,
    plan_shards,
    stable_flow_hash,
)
from repro.errors import SimulationError
from repro.programs import TABLE1_ORDER, get_program
from repro.programs.variants import (
    make_accumulator_variant,
    make_flow_counters_cross_reader_variant,
    make_flow_counters_readers_variant,
    make_flow_counters_variant,
    make_threshold_variant,
)

SHARD_COUNTS = (1, 2, 4, 7)


def compiled(program, opt_level=dgen.OPT_FUSED):
    return dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=opt_level)


def assert_bit_for_bit(result, reference, label=""):
    assert result.outputs == reference.outputs, label
    assert result.final_state == reference.final_state, label
    assert result.input_trace == reference.input_trace, label
    assert result.ticks == reference.ticks, label
    assert [record.phv_id for record in result.output_trace] == [
        record.phv_id for record in reference.output_trace
    ], label


# ----------------------------------------------------------------------
# Partitioning primitives
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_stable_flow_hash_is_deterministic_and_spreads(self):
        assert stable_flow_hash([1, 2]) == stable_flow_hash([1, 2])
        keys = {stable_flow_hash([flow]) % 4 for flow in range(64)}
        assert keys == {0, 1, 2, 3}

    def test_block_plan_covers_every_index_once(self):
        plan = plan_shards(10, 3)
        assert plan.mode == "block"
        flat = [index for assignment in plan.assignments for index in assignment]
        assert sorted(flat) == list(range(10))
        # contiguous: each shard's indices are consecutive
        for assignment in plan.assignments:
            assert list(assignment) == list(range(assignment[0], assignment[-1] + 1))

    def test_flow_plan_groups_by_key_in_trace_order(self):
        keys = [stable_flow_hash([flow]) for flow in [0, 1, 0, 2, 1, 0]]
        plan = plan_shards(6, 4, keys)
        assert plan.mode == "flow"
        for assignment in plan.assignments:
            assert list(assignment) == sorted(assignment)  # trace order kept
            assert len({keys[index] % 4 for index in assignment}) >= 1
        flat = sorted(index for assignment in plan.assignments for index in assignment)
        assert flat == list(range(6))

    def test_gather_restores_original_order(self):
        plan = ShardPlan("flow", [(2, 0), (1, 3)])
        assert plan.gather(4, [["c", "a"], ["b", "d"]]) == ["a", "b", "c", "d"]

    def test_empty_trace_and_bad_counts(self):
        assert len(plan_shards(0, 4)) == 0
        with pytest.raises(SimulationError):
            plan_shards(4, 0)
        with pytest.raises(SimulationError):
            plan_shards(4, 2, keys=[1, 2])  # one key per input


# ----------------------------------------------------------------------
# Property: flow-parallel programs are bit-for-bit under any shard count
# ----------------------------------------------------------------------
class TestFlowParallelEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_randomized_programs_traces_and_shards(self, data):
        """Random flow counts, ops, seeds, traces and shard counts agree."""
        flows = data.draw(st.integers(min_value=1, max_value=6), label="flows")
        op = data.draw(st.sampled_from(["+", "-"]), label="op")
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        shards = data.draw(st.sampled_from(SHARD_COUNTS), label="shards")
        count = data.draw(st.integers(min_value=0, max_value=120), label="count")

        program = make_flow_counters_variant(flows, op)
        description = compiled(program)
        inputs = program.traffic_generator(seed=seed).generate(count)

        reference = RMTSimulator(description, engine="generic").run(inputs)
        tick = RMTSimulator(description, engine="tick").run(inputs)
        sharded = RMTSimulator(
            description, engine="sharded", shards=shards, workers=1, shard_key=[0]
        ).run(inputs)

        assert_bit_for_bit(tick, reference, "tick vs generic")
        assert_bit_for_bit(sharded, reference, f"sharded x{shards}")
        assert sharded.engine == "sharded[fused]"

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_interleaved_flows_across_the_trace(self, shards):
        """Flows whose packets interleave arbitrarily still merge bit-for-bit."""
        program = make_flow_counters_variant(5)
        description = compiled(program)
        # Adversarial interleaving: round-robin, bursts, then reversed tail.
        inputs = []
        for index in range(60):
            inputs.append([index % 5, 100 + index] + [0] * 5)
        for flow in (3, 3, 3, 1, 1, 4, 0, 2, 2):
            inputs.append([flow, 7 * flow + 1] + [0] * 5)
        inputs.extend([[flow, 9] + [0] * 5 for flow in (4, 3, 2, 1, 0)])

        reference = RMTSimulator(description, engine="generic").run(inputs)
        sharded = RMTSimulator(
            description, engine="sharded", shards=shards, workers=1, shard_key=[0]
        ).run(inputs)
        assert_bit_for_bit(sharded, reference, f"shards={shards}")

    def test_pool_path_matches_in_process_path(self):
        """The multiprocessing pool produces exactly the in-process result."""
        program = make_flow_counters_variant(6)
        description = compiled(program)
        inputs = program.traffic_generator(seed=9).generate(400)
        in_process = RMTSimulator(
            description, engine="sharded", shards=4, workers=1, shard_key=[0]
        ).run(inputs)
        pooled = RMTSimulator(
            description,
            engine="sharded",
            shards=4,
            workers=2,
            shard_key=[0],
            shard_pool_threshold=1,
        ).run(inputs)
        assert_bit_for_bit(pooled, in_process, "pool vs in-process")
        assert pooled.engine == in_process.engine == "sharded[fused]"

    def test_generic_inner_driver_below_opt_level_3(self):
        """Sharding wraps the generic stage loop when no fused entry exists."""
        program = make_flow_counters_variant(4)
        description = compiled(program, opt_level=dgen.OPT_SCC_INLINE)
        inputs = program.traffic_generator(seed=4).generate(90)
        reference = RMTSimulator(description, engine="generic").run(inputs)
        sharded = RMTSimulator(
            description, engine="sharded", shards=4, workers=1, shard_key=[0]
        ).run(inputs)
        assert_bit_for_bit(sharded, reference)
        assert sharded.engine == "sharded[generic]"


# ----------------------------------------------------------------------
# The 12 Table-1 programs under auto-sharding
# ----------------------------------------------------------------------
class TestTable1AutoSharding:
    @pytest.mark.parametrize("program_name", TABLE1_ORDER)
    def test_auto_sharding_stays_bit_for_bit(self, program_name):
        """auto + sharding knobs: bit-for-bit whatever the driver decides.

        The Table-1 programs keep their state in fixed ALU cells shared by
        every packet, so a multi-shard partition conflicts and the driver
        falls back — the guarantee under test is that the answer is always
        exactly the sequential one.
        """
        program = get_program(program_name)
        description = compiled(program)
        inputs = program.traffic_generator(seed=13).generate(150)
        reference = RMTSimulator(
            description, initial_state=program.initial_pipeline_state(), engine="generic"
        ).run(inputs)
        tick = RMTSimulator(
            description, initial_state=program.initial_pipeline_state(), engine="tick"
        ).run(inputs)
        auto = RMTSimulator(
            description,
            initial_state=program.initial_pipeline_state(),
            engine="auto",
            shards=4,
            workers=1,
            shard_key=[0],
            shard_threshold=1,
        ).run(inputs)
        assert_bit_for_bit(tick, reference, "tick")
        assert_bit_for_bit(auto, reference, "auto-sharded")

    @pytest.mark.parametrize("program_name", TABLE1_ORDER)
    def test_explicit_single_shard_runs_every_program(self, program_name):
        """A one-shard explicit request degrades to the wrapped driver safely."""
        program = get_program(program_name)
        description = compiled(program)
        inputs = program.traffic_generator(seed=2).generate(80)
        reference = RMTSimulator(
            description, initial_state=program.initial_pipeline_state(), engine="generic"
        ).run(inputs)
        sharded = RMTSimulator(
            description,
            initial_state=program.initial_pipeline_state(),
            engine="sharded",
            shards=1,
            workers=1,
        ).run(inputs)
        assert_bit_for_bit(sharded, reference)
        assert sharded.engine == "sharded[fused]"


# ----------------------------------------------------------------------
# The state-conflict guard
# ----------------------------------------------------------------------
class TestConflictGuard:
    def test_shared_state_key_raises_a_clear_error(self):
        """A program whose state is shared across flows must not merge silently.

        A hidden global accumulator (no stateful output routed, so the
        two-writer rule — not the exposure rule — decides) written by every
        flow conflicts as soon as two shards touch it.
        """
        from repro import atoms
        from repro.chipmunk.allocation import MachineCodeBuilder
        from repro.hardware import PipelineSpec

        spec = PipelineSpec(
            depth=1,
            width=2,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="global_accumulator",
        )
        builder = MachineCodeBuilder(spec)
        # state += payload for every packet, never exposed in outputs.
        builder.configure_raw(
            stage=0, slot=0, use_state=True, rhs=("pkt", 1), input_containers=[0, 1]
        )
        description = dgen.generate(spec, builder.build(), opt_level=dgen.OPT_FUSED)
        inputs = [[index % 4, 1 + index] for index in range(40)]
        with pytest.raises(ShardStateConflictError) as excinfo:
            RMTSimulator(
                description, engine="sharded", shards=4, workers=1, shard_key=[0]
            ).run(inputs)
        message = str(excinfo.value)
        assert "written by shards" in message
        assert "flow key does not partition" in message
        assert excinfo.value.key == (0, 0, 0)
        assert len(excinfo.value.shards) == 2

    def test_exposed_state_makes_any_write_a_conflict(self):
        """Routing a stateful output turns the merge strict: one write conflicts.

        This is what catches the stateful_firewall shape — one flow writes,
        another only *reads* the cell into its outputs, which a write-based
        two-writer rule alone would miss.
        """
        program = make_accumulator_variant(3)  # routes its stateful output
        description = compiled(program)
        inputs = [[value] for value in range(40)]
        with pytest.raises(ShardStateConflictError) as excinfo:
            RMTSimulator(
                description, engine="sharded", shards=4, workers=1, shard_key=[0]
            ).run(inputs)
        assert "routes stateful ALU outputs" in str(excinfo.value)

    def test_blind_partition_refuses_any_state_write(self):
        """Without a flow key, a single write is already a conflict."""
        program = make_accumulator_variant(1)
        description = compiled(program)
        inputs = [[value] for value in range(16)]
        with pytest.raises(ShardStateConflictError) as excinfo:
            RMTSimulator(description, engine="sharded", shards=2, workers=1).run(inputs)
        assert "block partitioning" in str(excinfo.value)

    def test_auto_falls_back_instead_of_raising(self):
        program = make_accumulator_variant(5)
        description = compiled(program)
        inputs = [[value] for value in range(60)]
        reference = RMTSimulator(description, engine="generic").run(inputs)
        auto = RMTSimulator(
            description,
            engine="auto",
            shards=4,
            workers=1,
            shard_key=[0],
            shard_threshold=1,
        ).run(inputs)
        assert_bit_for_bit(auto, reference)
        assert not auto.engine.startswith(ENGINE_SHARDED)  # fell back

    def test_auto_remembers_the_conflict(self):
        """After one conflict, auto skips the doomed sharded attempt.

        The first run pays shard + fallback; later runs on the same
        simulator must not re-execute the sharded leg just to rediscover
        the conflict (the facade remembers it).
        """
        program = make_accumulator_variant(2)
        description = compiled(program)
        inputs = [[value] for value in range(30)]
        simulator = RMTSimulator(
            description, engine="auto", shards=4, workers=1, shard_key=[0], shard_threshold=1
        )
        assert not simulator._auto_shard_conflict
        first = simulator.run(inputs)
        assert simulator._auto_shard_conflict
        second = simulator.run(inputs)
        assert first.outputs == second.outputs
        assert not second.engine.startswith(ENGINE_SHARDED)
        # An explicit request on a fresh simulator still raises loudly.
        with pytest.raises(ShardStateConflictError):
            RMTSimulator(
                description, engine="sharded", shards=4, workers=1, shard_key=[0]
            ).run(inputs)

    def test_bad_shard_knobs_rejected_eagerly(self):
        """Invalid knobs are a construction-time error on both facades."""
        program = make_flow_counters_variant(2)
        description = compiled(program)
        with pytest.raises(SimulationError, match="worker count"):
            RMTSimulator(description, engine="auto", shards=4, workers=0)
        with pytest.raises(SimulationError, match="shard count"):
            RMTSimulator(description, engine="sharded", shards=0)

        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
        from repro.p4 import samples

        bundle = generate_bundle(samples.simple_router(), DrmtHardwareParams())
        with pytest.raises(SimulationError, match="worker count"):
            DRMTSimulator(bundle, engine="auto", shards=4, workers=0)
        with pytest.raises(SimulationError, match="shard count"):
            DRMTSimulator(bundle, engine="sharded", shards=-1)

    def test_conflicting_attempt_leaves_no_trace_on_fallback(self):
        """The failed sharded attempt must not leak partial state anywhere."""
        program = make_accumulator_variant(2)
        description = compiled(program)
        inputs = [[value] for value in range(30)]
        simulator = RMTSimulator(
            description,
            engine="auto",
            shards=4,
            workers=1,
            shard_key=[0],
            shard_threshold=1,
        )
        first = simulator.run(inputs)
        second = simulator.run(inputs)  # a fresh state copy every run
        assert first.outputs == second.outputs
        assert first.final_state == second.final_state

    def test_flow_owned_state_does_not_conflict(self):
        """Sanity: the same guard admits a genuinely partitioned program."""
        program = make_flow_counters_variant(3)
        description = compiled(program)
        inputs = program.traffic_generator(seed=1).generate(50)
        result = RMTSimulator(
            description, engine="sharded", shards=4, workers=1, shard_key=[0]
        ).run(inputs)
        assert result.engine == "sharded[fused]"

    def test_raw_atom_default_state_write_refuses_blind_partitioning(self):
        """Even an "output-stateless" program is refused if its state moves.

        The threshold variant's outputs ignore state entirely, but the
        unconfigured ``raw`` default ALU still accumulates ``state += pkt``
        every packet — final-state equality is part of bit-for-bit, so the
        guard must refuse a blind split.
        """
        program = make_threshold_variant(100)
        description = compiled(program)
        inputs = program.traffic_generator(seed=6).generate(40)
        with pytest.raises(ShardStateConflictError):
            RMTSimulator(description, engine="sharded", shards=2, workers=1).run(inputs)

    def test_state_free_workload_admits_blind_partitioning(self):
        """A program whose state provably never moves splits without a key.

        ``pred_raw``'s passthrough default (``if state == pkt: state += pkt``)
        only ever rewrites a zero cell with zero, so a pipeline whose only
        configured ALU is stateless keeps every state value fixed — the
        blind-partition guard admits it and the merge is exact.
        """
        from repro import atoms
        from repro.chipmunk.allocation import MachineCodeBuilder
        from repro.hardware import PipelineSpec
        from repro.machine_code import naming

        spec = PipelineSpec(
            depth=1,
            width=2,
            stateful_alu=atoms.get_atom("pred_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="stateless_threshold",
        )
        builder = MachineCodeBuilder(spec)
        builder.configure_stateless_full(
            stage=0, slot=0, mode="rel", op=">", a=("pkt", 0), b=("const", 100),
            input_containers=[0, 1],
        )
        builder.route_output(stage=0, container=1, kind=naming.STATELESS, slot=0)
        description = dgen.generate(spec, builder.build(), opt_level=dgen.OPT_FUSED)
        inputs = [[value * 37 % 1024, 0] for value in range(64)]

        reference = RMTSimulator(description, engine="generic").run(inputs)
        sharded = RMTSimulator(description, engine="sharded", shards=4, workers=1).run(inputs)
        assert_bit_for_bit(sharded, reference)
        assert sharded.engine == "sharded[fused]"

    def test_exposure_check_reduces_opcode_modulo_choices(self):
        """An out-of-domain mux opcode cannot smuggle a stateful route past
        the exposure check: it must reduce modulo the choice count exactly
        like the executed mux does."""
        from repro.engine.sharded import routes_stateful_output
        from repro.machine_code import naming

        description = compiled(make_flow_counters_variant(2))  # width 4, choices 9
        width = description.spec.width
        choices = description.spec.output_mux_choices
        name = naming.output_mux_name(0, 0)
        assert routes_stateful_output(description, {name: width + choices})
        assert not routes_stateful_output(description, {name: choices})  # ≡ stateless 0
        assert not routes_stateful_output(description, {name: 2 * width})  # passthrough

    def test_empty_trace_is_trivially_sharded(self):
        program = make_flow_counters_variant(2)
        description = compiled(program)
        result = RMTSimulator(
            description, engine="sharded", shards=4, workers=1, shard_key=[0]
        ).run([])
        assert result.outputs == []
        assert result.ticks == 0
        assert result.engine == "sharded[fused]"


# ----------------------------------------------------------------------
# Read-set tracking: the per-cell exposure rule
# ----------------------------------------------------------------------
class TestReadSetTracking:
    def test_exposed_state_slots_static_pass(self):
        """The static pass names exactly the routed stateful cells."""
        from repro.machine_code.readsets import exposed_state_slots, stage_read_sets

        plain = compiled(make_flow_counters_variant(3))
        assert exposed_state_slots(plain.spec, plain.runtime_values()) == frozenset()

        readers = compiled(make_flow_counters_readers_variant(3))
        values = readers.runtime_values()
        assert exposed_state_slots(readers.spec, values) == frozenset(
            {(2, 0), (2, 1), (2, 2)}
        )
        assert stage_read_sets(readers.spec, values) == {2: frozenset({0, 1, 2})}

        cross = compiled(make_flow_counters_cross_reader_variant(3))
        assert exposed_state_slots(cross.spec, cross.runtime_values()) == frozenset(
            {(1, 0)}
        )

    def test_readers_variant_matches_its_specification(self):
        """The machine code of the reader workload is fuzz-validated."""
        from repro.testing import FuzzConfig, FuzzTester

        for factory in (
            make_flow_counters_readers_variant,
            make_flow_counters_cross_reader_variant,
        ):
            program = factory(3)
            tester = FuzzTester(
                program.pipeline_spec(),
                program.specification(),
                config=FuzzConfig(num_phvs=150, seed=5),
                traffic_generator=program.traffic_generator(seed=5),
                initial_state=program.initial_pipeline_state(),
            )
            outcome = tester.test(program.machine_code())
            assert outcome.passed, f"{program.name}: {outcome.describe()}"

    @pytest.mark.parametrize("shards", (2, 4, 7))
    def test_flow_local_readers_shard_bit_for_bit(self, shards):
        """Exposing read-only cells no longer forces the strict fallback.

        PR 3's whole-state rule refused any program that routed a stateful
        output; the per-cell read set sees that the exposed threshold cells
        are never written while the written accumulators are never exposed,
        so the workload shards legally — and bit-for-bit against both
        sequential drivers.
        """
        program = make_flow_counters_readers_variant(4)
        description = compiled(program)
        initial = program.initial_pipeline_state
        inputs = program.traffic_generator(seed=11).generate(160)
        reference = RMTSimulator(
            description, initial_state=initial(), engine="generic"
        ).run(inputs)
        tick = RMTSimulator(description, initial_state=initial(), engine="tick").run(inputs)
        sharded = RMTSimulator(
            description,
            initial_state=initial(),
            engine="sharded",
            shards=shards,
            workers=1,
            shard_key=[0],
        ).run(inputs)
        assert_bit_for_bit(tick, reference, "tick vs generic")
        assert_bit_for_bit(sharded, reference, f"sharded x{shards}")
        assert sharded.engine == "sharded[fused]"

    def test_flow_local_readers_stay_sharded_under_auto(self):
        """auto keeps the sharded driver: no conflict is recorded."""
        program = make_flow_counters_readers_variant(3)
        description = compiled(program)
        inputs = program.traffic_generator(seed=3).generate(90)
        simulator = RMTSimulator(
            description,
            initial_state=program.initial_pipeline_state(),
            engine="auto",
            shards=4,
            workers=1,
            shard_key=[0],
            shard_threshold=1,
        )
        result = simulator.run(inputs)
        assert result.engine == "sharded[fused]"
        assert not simulator._auto_shard_conflict

    def test_cross_flow_reader_still_raises(self):
        """A written cell exposed to every packet must keep conflicting."""
        program = make_flow_counters_cross_reader_variant(4)
        description = compiled(program)
        inputs = program.traffic_generator(seed=2).generate(120)
        with pytest.raises(ShardStateConflictError) as excinfo:
            RMTSimulator(
                description, engine="sharded", shards=4, workers=1, shard_key=[0]
            ).run(inputs)
        message = str(excinfo.value)
        assert "routes stateful ALU outputs" in message
        assert excinfo.value.key == (1, 0, 0)

    def test_cross_flow_reader_falls_back_under_auto(self):
        program = make_flow_counters_cross_reader_variant(3)
        description = compiled(program)
        inputs = program.traffic_generator(seed=4).generate(80)
        reference = RMTSimulator(description, engine="generic").run(inputs)
        auto = RMTSimulator(
            description,
            engine="auto",
            shards=4,
            workers=1,
            shard_key=[0],
            shard_threshold=1,
        ).run(inputs)
        assert_bit_for_bit(auto, reference)
        assert not auto.engine.startswith(ENGINE_SHARDED)


# ----------------------------------------------------------------------
# Shard transports
# ----------------------------------------------------------------------
class TestShardTransports:
    def test_unknown_transport_rejected_everywhere(self):
        from repro.engine.transport import resolve_transport

        with pytest.raises(SimulationError, match="pickle, shm"):
            resolve_transport("carrier-pigeon")
        program = make_flow_counters_variant(2)
        description = compiled(program)
        with pytest.raises(SimulationError, match="unknown shard transport"):
            RMTSimulator(description, engine="sharded", transport="bogus")

        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
        from repro.p4 import samples

        bundle = generate_bundle(samples.simple_router(), DrmtHardwareParams())
        with pytest.raises(SimulationError, match="unknown shard transport"):
            DRMTSimulator(bundle, engine="sharded", transport="bogus")

    @pytest.mark.parametrize("opt_level", (dgen.OPT_SCC_INLINE, dgen.OPT_FUSED))
    def test_shm_pool_matches_pickle_pool_and_in_process(self, opt_level):
        """The transport is a wire-format choice, never a semantics choice."""
        from repro.engine.transport import SharedMemoryTransport

        program = make_flow_counters_variant(6)
        description = compiled(program, opt_level=opt_level)
        inputs = program.traffic_generator(seed=9).generate(400)
        in_process = RMTSimulator(
            description, engine="sharded", shards=4, workers=1, shard_key=[0]
        ).run(inputs)
        pickled = RMTSimulator(
            description,
            engine="sharded",
            shards=4,
            workers=2,
            shard_key=[0],
            shard_pool_threshold=1,
            transport="pickle",
        ).run(inputs)
        shm = SharedMemoryTransport()
        shared = RMTSimulator(
            description,
            engine="sharded",
            shards=4,
            workers=2,
            shard_key=[0],
            shard_pool_threshold=1,
            transport=shm,
        ).run(inputs)
        assert_bit_for_bit(pickled, in_process, "pickle pool")
        assert_bit_for_bit(shared, in_process, "shm pool")
        assert shm.last_fallback_reason is None

    def test_shm_falls_back_when_values_exceed_int64(self):
        """Non-flat-packable traces silently take the pickle path, recorded."""
        from repro.engine.transport import SharedMemoryTransport

        program = make_flow_counters_variant(4)
        description = compiled(program)
        inputs = [[index % 4, 1 << 70] + [0] * 4 for index in range(60)]
        reference = RMTSimulator(
            description, engine="sharded", shards=4, workers=1, shard_key=[0]
        ).run(inputs)
        shm = SharedMemoryTransport()
        result = RMTSimulator(
            description,
            engine="sharded",
            shards=4,
            workers=2,
            shard_key=[0],
            shard_pool_threshold=1,
            transport=shm,
        ).run(inputs)
        assert_bit_for_bit(result, reference, "fallback")
        assert shm.last_fallback_reason is not None
        assert "int64" in shm.last_fallback_reason

    def test_shm_transport_on_drmt_matches_in_process(self):
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator
        from repro.engine.transport import SharedMemoryTransport
        from repro.p4 import samples
        from repro.drmt import DrmtHardwareParams, generate_bundle
        from repro.traffic import choice_field

        bundle = generate_bundle(
            samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=4)
        )
        entries = samples.TELEMETRY_ENTRIES
        generator = PacketGenerator(
            bundle.program, seed=8, field_overrides={"pkt.flow_id": choice_field([1, 2, 3])}
        )
        packets = generator.generate(240)
        in_process = DRMTSimulator(
            bundle, table_entries=entries, engine="sharded", shards=3, workers=1,
            shard_key=["pkt.flow_id"],
        ).run_packets(packets)
        shm = SharedMemoryTransport()
        shared = DRMTSimulator(
            bundle, table_entries=entries, engine="sharded", shards=3, workers=2,
            shard_key=["pkt.flow_id"], shard_pool_threshold=1, transport=shm,
        ).run_packets(packets)
        TestDrmtSharding._assert_results_equal(shared, in_process)
        assert shm.last_fallback_reason is None

    def test_shm_transport_on_drmt_falls_back_for_ragged_packets(self):
        """Packets with differing field sets are not flat-packable."""
        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
        from repro.drmt.traffic import PacketGenerator
        from repro.engine.transport import SharedMemoryTransport
        from repro.p4 import samples
        from repro.traffic import choice_field

        bundle = generate_bundle(
            samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=2)
        )
        generator = PacketGenerator(
            bundle.program, seed=1, field_overrides={"pkt.flow_id": choice_field([1, 2])}
        )
        packets = generator.generate(120)
        del packets[7]["pkt.queue_depth"]  # one ragged packet rules shm out
        shm = SharedMemoryTransport()
        shared = DRMTSimulator(
            bundle, table_entries=samples.TELEMETRY_ENTRIES, engine="sharded",
            shards=2, workers=2, shard_key=["pkt.flow_id"], shard_pool_threshold=1,
            transport=shm,
        ).run_packets(packets)
        pickled = DRMTSimulator(
            bundle, table_entries=samples.TELEMETRY_ENTRIES, engine="sharded",
            shards=2, workers=2, shard_key=["pkt.flow_id"], shard_pool_threshold=1,
            transport="pickle",
        ).run_packets(packets)
        TestDrmtSharding._assert_results_equal(shared, pickled)
        assert shm.last_fallback_reason is not None
        assert "field sets vary" in shm.last_fallback_reason


# ----------------------------------------------------------------------
# Selection rules
# ----------------------------------------------------------------------
class TestShardedSelection:
    def test_auto_selects_sharded_above_threshold_only(self):
        program = make_flow_counters_variant(4)
        description = compiled(program)
        inputs = program.traffic_generator(seed=0).generate(50)
        simulator = RMTSimulator(
            description,
            engine="auto",
            shards=4,
            workers=1,
            shard_key=[0],
            shard_threshold=40,
        )
        assert simulator.run(inputs).engine == "sharded[fused]"
        assert simulator.run(inputs[:10]).engine == "fused"  # below threshold

    def test_auto_without_knobs_never_shards(self):
        program = make_flow_counters_variant(4)
        description = compiled(program)
        inputs = program.traffic_generator(seed=0).generate(50)
        assert RMTSimulator(description, engine="auto").run(inputs).engine == "fused"

    def test_tick_accurate_overrides_sharding(self):
        program = make_flow_counters_variant(4)
        description = compiled(program)
        inputs = program.traffic_generator(seed=0).generate(20)
        result = RMTSimulator(
            description, engine="sharded", shards=2, workers=1, shard_key=[0]
        ).run(inputs, tick_accurate=True)
        assert result.engine == "tick"

    def test_bad_flow_key_container_rejected(self):
        program = make_flow_counters_variant(2)
        description = compiled(program)
        with pytest.raises(SimulationError, match="out of range"):
            RMTSimulator(
                description, engine="sharded", shards=2, shard_key=[99]
            ).run([[0, 0, 0, 0]])

    def test_unavailable_engine_error_lists_available_drivers(self):
        """The error for an unavailable driver names the ones that exist."""
        program = make_flow_counters_variant(2)
        description = compiled(program, opt_level=dgen.OPT_SCC_INLINE)
        with pytest.raises(SimulationError) as excinfo:
            RMTSimulator(description, engine="fused").run([[0, 0, 0, 0]])
        message = str(excinfo.value)
        assert "carries no fused run_trace entry point" in message
        assert "available drivers for this pipeline description: tick, generic" in message

        from repro.engine import RunToCompletionSimulator

        fused_description = compiled(program)
        with pytest.raises(SimulationError) as excinfo:
            RunToCompletionSimulator(fused_description, engine="sharded").run([[0, 0, 0, 0]])
        message = str(excinfo.value)
        assert "has no sharding configuration" in message
        assert "available drivers" in message
        assert "tick, generic, fused" in message


# ----------------------------------------------------------------------
# dRMT sharding
# ----------------------------------------------------------------------
class TestDrmtSharding:
    @staticmethod
    def _telemetry(num_processors=4):
        from repro.drmt import DrmtHardwareParams, generate_bundle
        from repro.p4 import samples

        bundle = generate_bundle(
            samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=num_processors)
        )
        return bundle, samples.TELEMETRY_ENTRIES

    @staticmethod
    def _assert_results_equal(result, reference):
        assert [record.outputs for record in result.records] == [
            record.outputs for record in reference.records
        ]
        assert [record.dropped for record in result.records] == [
            record.dropped for record in reference.records
        ]
        assert [
            (record.packet_id, record.processor, record.arrival_tick, record.completed_tick)
            for record in result.records
        ] == [
            (record.packet_id, record.processor, record.arrival_tick, record.completed_tick)
            for record in reference.records
        ]
        assert result.register_dump == reference.register_dump
        assert result.table_hits == reference.table_hits
        assert result.ticks == reference.ticks
        assert result.per_processor_packets == reference.per_processor_packets

    COUNTER_SOURCE = """
header_type pkt_t {
    fields {
        flow : 16;
        other : 16;
        total : 16;
    }
}

header pkt_t pkt;

register per_flow {
    width : 32;
    instance_count : 8;
}

action bump() {
    register_read(pkt.total, per_flow, pkt.flow);
    add_to_field(pkt.total, 1);
    register_write(per_flow, pkt.flow, pkt.total);
}

table counters {
    reads {
        pkt.flow : exact;
    }
    actions { bump; }
    default_action : bump;
}

control ingress {
    apply(counters);
}
"""

    #: Same program plus a second register indexed by a *different* field —
    #: a tuple hash over (flow, other) would split packets that share a
    #: per_flow cell across shards, so no auto key may be derived.
    TWO_REGISTER_SOURCE = COUNTER_SOURCE.replace(
        "register per_flow {\n    width : 32;\n    instance_count : 8;\n}",
        "register per_flow {\n    width : 32;\n    instance_count : 8;\n}\n\n"
        "register by_other {\n    width : 32;\n    instance_count : 8;\n}",
    ).replace(
        "    register_write(per_flow, pkt.flow, pkt.total);\n}",
        "    register_write(per_flow, pkt.flow, pkt.total);\n"
        "    register_write(by_other, pkt.other, pkt.total);\n}",
    )

    def test_derived_state_fields(self):
        from repro.drmt import DrmtHardwareParams, generate_bundle
        from repro.engine.drmt import derive_auto_shard_key, derive_state_fields
        from repro.p4 import samples

        telemetry, _ = self._telemetry()
        # telemetry rewrites its index field (meta.bucket) mid-program, so no
        # input-derived key exists; simple_router indexes by a constant.
        assert derive_state_fields(telemetry.program) is None
        router = generate_bundle(samples.simple_router(), DrmtHardwareParams())
        assert derive_state_fields(router.program) is None

        counter = generate_bundle(self.COUNTER_SOURCE, DrmtHardwareParams())
        assert derive_state_fields(counter.program) == ("pkt.flow",)
        assert derive_auto_shard_key(counter.program) == (("pkt.flow",), 8)

        two = generate_bundle(self.TWO_REGISTER_SOURCE, DrmtHardwareParams())
        assert derive_state_fields(two.program) == ("pkt.flow", "pkt.other")
        # A multi-field tuple hash cannot give shards exclusive cell
        # ownership, so the driver gets no auto key for this program.
        assert derive_auto_shard_key(two.program) is None

    @pytest.mark.parametrize("shards", (2, 4))
    def test_auto_key_shards_per_flow_counters_bit_for_bit(self, shards):
        """Derived single-field key: sharded == fused, including index wrap.

        Flow values deliberately exceed the 8-cell register, so distinct
        flows collide on cells (e.g. 3 and 11); the modulo-reduced key keeps
        every colliding pair in one shard, which is what makes the derived
        key sound without any caller contract.
        """
        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle

        bundle = generate_bundle(self.COUNTER_SOURCE, DrmtHardwareParams(num_processors=3))
        packets = [
            {"pkt.flow": (index * 7) % 20, "pkt.other": index % 5, "pkt.total": 0}
            for index in range(120)
        ]
        reference = DRMTSimulator(bundle, engine="fused").run_packets(packets)
        sharded = DRMTSimulator(
            bundle, engine="sharded", shards=shards, workers=1
        ).run_packets(packets)
        self._assert_results_equal(sharded, reference)
        assert sharded.engine == "sharded[fused]"

    def test_multi_field_index_program_runs_one_shard(self):
        """No sound auto key: the driver degrades to a single shard, exactly."""
        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
        from repro.engine.sharded import ShardedDrmtDriver

        bundle = generate_bundle(self.TWO_REGISTER_SOURCE, DrmtHardwareParams())
        simulator = DRMTSimulator(bundle, engine="sharded", shards=4, workers=1)
        driver = ShardedDrmtDriver(bundle, simulator.tables, simulator.registers, shards=4)
        assert driver.key is None
        packets = [
            {"pkt.flow": index % 6, "pkt.other": (index * 3) % 6, "pkt.total": 0}
            for index in range(80)
        ]
        reference = DRMTSimulator(bundle, engine="fused").run_packets(packets)
        sharded = simulator.run_packets(packets)
        self._assert_results_equal(sharded, reference)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_explicit_flow_key_matches_tick_and_fused(self, shards):
        """Flow-restricted telemetry traffic shards bit-for-bit."""
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator
        from repro.traffic import choice_field

        bundle, entries = self._telemetry()
        generator = PacketGenerator(
            bundle.program, seed=5, field_overrides={"pkt.flow_id": choice_field([1, 2, 3])}
        )
        packets = generator.generate(300)
        tick = DRMTSimulator(bundle, table_entries=entries, engine="tick").run_packets(packets)
        fused = DRMTSimulator(bundle, table_entries=entries, engine="fused").run_packets(packets)
        sharded = DRMTSimulator(
            bundle,
            table_entries=entries,
            engine="sharded",
            shards=shards,
            workers=1,
            shard_key=["pkt.flow_id"],
        ).run_packets(packets)
        self._assert_results_equal(fused, tick)
        self._assert_results_equal(sharded, tick)
        assert sharded.engine == "sharded[fused]"

    def test_cross_flow_register_sharing_conflicts_and_auto_falls_back(self):
        """Unmatched flows share bucket 0: conflict, then fallback under auto."""
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator

        bundle, entries = self._telemetry()
        packets = PacketGenerator(bundle.program, seed=5).generate(300)
        with pytest.raises(ShardStateConflictError):
            DRMTSimulator(
                bundle,
                table_entries=entries,
                engine="sharded",
                shards=4,
                workers=1,
                shard_key=["pkt.flow_id"],
            ).run_packets(packets)
        reference = DRMTSimulator(bundle, table_entries=entries, engine="fused").run_packets(packets)
        auto = DRMTSimulator(
            bundle,
            table_entries=entries,
            engine="auto",
            shards=4,
            workers=1,
            shard_key=["pkt.flow_id"],
            shard_threshold=1,
        ).run_packets(packets)
        self._assert_results_equal(auto, reference)
        assert auto.engine == "fused"  # fell back

    def test_underivable_key_runs_one_shard(self):
        """No safe key (derived None): still correct via a single shard."""
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator

        bundle, entries = self._telemetry()
        packets = PacketGenerator(bundle.program, seed=3).generate(120)
        reference = DRMTSimulator(bundle, table_entries=entries, engine="fused").run_packets(packets)
        sharded = DRMTSimulator(
            bundle, table_entries=entries, engine="sharded", shards=4, workers=1
        ).run_packets(packets)
        self._assert_results_equal(sharded, reference)
        assert sharded.engine == "sharded[fused]"

    def test_pool_path_matches_in_process(self):
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator
        from repro.traffic import choice_field

        bundle, entries = self._telemetry()
        generator = PacketGenerator(
            bundle.program, seed=8, field_overrides={"pkt.flow_id": choice_field([1, 2, 3])}
        )
        packets = generator.generate(240)
        in_process = DRMTSimulator(
            bundle, table_entries=entries, engine="sharded", shards=3, workers=1,
            shard_key=["pkt.flow_id"],
        ).run_packets(packets)
        pooled = DRMTSimulator(
            bundle, table_entries=entries, engine="sharded", shards=3, workers=2,
            shard_key=["pkt.flow_id"], shard_pool_threshold=1,
        ).run_packets(packets)
        self._assert_results_equal(pooled, in_process)

    def test_sharded_rejects_observer(self):
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator

        bundle, entries = self._telemetry()
        packets = PacketGenerator(bundle.program, seed=1).generate(10)
        with pytest.raises(SimulationError, match="observer"):
            DRMTSimulator(
                bundle, table_entries=entries, engine="sharded", shards=2
            ).run_packets(packets, observer=lambda *args: None)

    #: Per-flow counter plus a *read-only* configuration register read at a
    #: constant index.  Under PR 3's write-blind derivation the constant
    #: index made the whole program unshardable; read tracking sees that
    #: ``config`` is never written and derives the per-flow key anyway.
    READ_ONLY_CONFIG_SOURCE = """
header_type pkt_t {
    fields {
        flow : 16;
        limit : 16;
        total : 16;
    }
}

header pkt_t pkt;

register per_flow {
    width : 32;
    instance_count : 8;
}

register config {
    width : 32;
    instance_count : 4;
}

action bump() {
    register_read(pkt.limit, config, 2);
    register_read(pkt.total, per_flow, pkt.flow);
    add_to_field(pkt.total, 1);
    register_write(per_flow, pkt.flow, pkt.total);
}

table counters {
    reads {
        pkt.flow : exact;
    }
    actions { bump; }
    default_action : bump;
}

control ingress {
    apply(counters);
}
"""

    #: A program whose only register is read-only: any partition is safe.
    PURE_READER_SOURCE = """
header_type pkt_t {
    fields {
        flow : 16;
        limit : 16;
    }
}

header pkt_t pkt;

register config {
    width : 32;
    instance_count : 4;
}

action tag() {
    register_read(pkt.limit, config, 1);
}

table taggers {
    reads {
        pkt.flow : exact;
    }
    actions { tag; }
    default_action : tag;
}

control ingress {
    apply(taggers);
}
"""

    def test_read_only_register_does_not_block_the_auto_key(self):
        """Read tracking: a never-written register is ignored by derivation."""
        from repro.drmt import DrmtHardwareParams, generate_bundle
        from repro.engine.drmt import (
            derive_auto_shard_key,
            derive_state_fields,
            written_registers,
        )

        bundle = generate_bundle(self.READ_ONLY_CONFIG_SOURCE, DrmtHardwareParams())
        assert written_registers(bundle.program) == frozenset({"per_flow"})
        assert derive_state_fields(bundle.program) == ("pkt.flow",)
        assert derive_auto_shard_key(bundle.program) == (("pkt.flow",), 8)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_read_only_config_program_shards_bit_for_bit(self, shards):
        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle

        bundle = generate_bundle(
            self.READ_ONLY_CONFIG_SOURCE, DrmtHardwareParams(num_processors=3)
        )
        packets = [
            {"pkt.flow": (index * 5) % 16, "pkt.limit": 0, "pkt.total": 0}
            for index in range(120)
        ]
        reference = DRMTSimulator(bundle, engine="fused").run_packets(packets)
        sharded = DRMTSimulator(
            bundle, engine="sharded", shards=shards, workers=1
        ).run_packets(packets)
        self._assert_results_equal(sharded, reference)
        assert sharded.engine == "sharded[fused]"

    def test_pure_reader_program_block_partitions(self):
        """Only read-only state: block partitioning is admitted and exact."""
        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
        from repro.engine.drmt import derive_auto_shard_key
        from repro.engine.sharded import ShardedDrmtDriver

        bundle = generate_bundle(self.PURE_READER_SOURCE, DrmtHardwareParams())
        assert derive_auto_shard_key(bundle.program) == ((), None)
        simulator = DRMTSimulator(bundle, engine="sharded", shards=4, workers=1)
        driver = ShardedDrmtDriver(bundle, simulator.tables, simulator.registers, shards=4)
        assert driver.key == ()
        packets = [{"pkt.flow": index % 9, "pkt.limit": 0} for index in range(60)]
        reference = DRMTSimulator(bundle, engine="fused").run_packets(packets)
        sharded = simulator.run_packets(packets)
        self._assert_results_equal(sharded, reference)
        assert sharded.engine == "sharded[fused]"

    def test_accumulated_statistics_match_sequential_reuse(self):
        """Reusing one simulator across runs accumulates like the tick model."""
        from repro.drmt import DRMTSimulator
        from repro.drmt.traffic import PacketGenerator
        from repro.traffic import choice_field

        bundle, entries = self._telemetry()
        generator = PacketGenerator(
            bundle.program, seed=2, field_overrides={"pkt.flow_id": choice_field([1, 2, 3])}
        )
        packets = generator.generate(100)
        sequential = DRMTSimulator(bundle, table_entries=entries, engine="fused")
        sharded = DRMTSimulator(
            bundle, table_entries=entries, engine="sharded", shards=3, workers=1,
            shard_key=["pkt.flow_id"],
        )
        for _ in range(2):
            reference = sequential.run_packets(packets)
            result = sharded.run_packets(packets)
        self._assert_results_equal(result, reference)
