"""Unit tests for ALU-level code generation and the pipeline generator."""

import pytest

from repro import atoms, dgen
from repro.dgen.codegen import (
    ALUFunctionGenerator,
    alu_function_name,
    generate_alu,
    helper_function_name,
)
from repro.errors import CodegenError, MissingMachineCodeError
from repro.hardware import PipelineSpec
from repro.ir import to_source
from repro.machine_code import naming


def alu_holes_machine_code(spec, stage, kind, slot, holes):
    """Build a machine-code mapping holding only the given ALU's holes."""
    return {
        naming.alu_hole_name(stage, kind, slot, hole): value for hole, value in holes.items()
    }


@pytest.fixture(scope="module")
def raw_atom():
    return atoms.get_atom("raw")


@pytest.fixture(scope="module")
def if_else_raw_atom():
    return atoms.get_atom("if_else_raw")


class TestALUFunctionGenerator:
    def test_level0_requires_no_machine_code(self, raw_atom):
        code = generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_UNOPTIMIZED)
        assert code.function is not None
        assert code.helpers  # generic helpers emitted

    def test_optimised_levels_require_machine_code(self, raw_atom):
        with pytest.raises(CodegenError):
            generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_SCC)

    def test_kind_mismatch_rejected(self, raw_atom):
        with pytest.raises(CodegenError):
            generate_alu(raw_atom, 0, naming.STATELESS, 0, dgen.OPT_UNOPTIMIZED)

    def test_invalid_opt_level_rejected(self, raw_atom):
        with pytest.raises(CodegenError):
            ALUFunctionGenerator(raw_atom, 0, naming.STATEFUL, 0, opt_level=7)

    def test_level0_body_reads_values_dict(self, raw_atom):
        code = generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_UNOPTIMIZED)
        from repro.ir import Module

        source = to_source(Module(functions=code.helpers + [code.function]))
        assert 'values["pipeline_stage_0_stateful_alu_0_' in source

    def test_level1_body_has_no_values_lookups(self, raw_atom):
        mc = alu_holes_machine_code(raw_atom, 0, naming.STATEFUL, 0, {"opt_0": 0, "const_0": 0, "mux3_0": 0})
        code = generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_SCC, mc)
        from repro.ir import Module

        source = to_source(Module(functions=code.helpers + [code.function]))
        assert "values[" not in source
        assert code.helpers  # helpers remain at the SCC level (Figure 6 version 2)

    def test_level2_has_no_helpers(self, raw_atom):
        mc = alu_holes_machine_code(raw_atom, 0, naming.STATEFUL, 0, {"opt_0": 0, "const_0": 0, "mux3_0": 0})
        code = generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_SCC_INLINE, mc)
        assert code.helpers == []

    def test_missing_hole_raises_at_generation_time(self, raw_atom):
        with pytest.raises(MissingMachineCodeError):
            generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_SCC_INLINE, {})

    def test_function_and_helper_names_carry_position(self, if_else_raw_atom):
        code = generate_alu(if_else_raw_atom, 3, naming.STATEFUL, 1, dgen.OPT_UNOPTIMIZED)
        assert code.function.name == alu_function_name(3, naming.STATEFUL, 1)
        assert all(helper.name.startswith("stage_3_stateful_alu_1_") for helper in code.helpers)
        assert helper_function_name(3, naming.STATEFUL, 1, "rel_op_0") in {
            helper.name for helper in code.helpers
        }

    def test_level0_helper_per_primitive_site(self, if_else_raw_atom):
        code = generate_alu(if_else_raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_UNOPTIMIZED)
        assert len(code.helpers) == len(if_else_raw_atom.holes)

    def test_call_rendering(self, raw_atom):
        code = generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_UNOPTIMIZED)
        call = code.call(["op_a", "op_b"], state_code="state[2]")
        assert call.startswith("stage_0_stateful_alu_0(")
        assert "state[2]" in call and call.endswith("values)")

    def test_call_rendering_optimised_omits_values(self, raw_atom):
        mc = alu_holes_machine_code(raw_atom, 0, naming.STATEFUL, 0, {"opt_0": 0, "const_0": 0, "mux3_0": 0})
        code = generate_alu(raw_atom, 0, naming.STATEFUL, 0, dgen.OPT_SCC_INLINE, mc)
        assert "values" not in code.call(["a", "b"], state_code="state[0]")


class TestGeneratedPipelineSource:
    @pytest.fixture(scope="class")
    def pipeline_and_machine_code(self):
        spec = PipelineSpec(
            depth=2,
            width=2,
            stateful_alu=atoms.get_atom("if_else_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="codegen_test",
        )
        return spec, spec.passthrough_machine_code()

    def test_source_shrinks_with_optimisation(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        sizes = {
            level: dgen.generate(spec, mc, opt_level=level).source_line_count()
            for level in dgen.OPT_LEVELS
        }
        assert sizes[0] > sizes[1] > sizes[2]

    def test_function_count_shrinks_with_optimisation(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        counts = {
            level: dgen.generate(spec, mc, opt_level=level).function_count()
            for level in dgen.OPT_LEVELS
        }
        assert counts[0] > counts[1] > counts[2]

    def test_level0_source_contains_values_lookups(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        source = dgen.generate(spec, mc, opt_level=0).source
        assert source.count('values["pipeline_stage_') > 10

    def test_level2_source_has_no_values_lookups_or_helper_calls(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        source = dgen.generate(spec, mc, opt_level=2).source
        assert 'values["' not in source
        assert "input_mux" not in source  # selections are inlined as phv[k]

    def test_module_globals_reflect_configuration(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        description = dgen.generate(spec, mc, opt_level=1)
        assert description.namespace["PIPELINE_DEPTH"] == 2
        assert description.namespace["PIPELINE_WIDTH"] == 2
        assert description.namespace["OPT_LEVEL"] == 1
        assert len(description.stage_functions) == 2

    def test_missing_pair_rejected_at_generation(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        broken = mc.without([naming.output_mux_name(0, 0)])
        with pytest.raises(MissingMachineCodeError):
            dgen.generate(spec, broken, opt_level=2)

    def test_validation_can_be_disabled_for_level0(self, pipeline_and_machine_code):
        spec, mc = pipeline_and_machine_code
        broken = mc.without([naming.output_mux_name(0, 0)])
        description = dgen.generate(spec, broken, opt_level=0, validate_machine_code=False)
        assert description.needs_runtime_values

    def test_machine_code_none_only_allowed_at_level0(self, pipeline_and_machine_code):
        spec, _ = pipeline_and_machine_code
        description = dgen.generate(spec, None, opt_level=0)
        assert description.machine_code is None
        with pytest.raises(CodegenError):
            dgen.generate(spec, None, opt_level=2)

    def test_save_source_round_trip(self, pipeline_and_machine_code, tmp_path):
        spec, mc = pipeline_and_machine_code
        description = dgen.generate(spec, mc, opt_level=2)
        path = description.save_source(tmp_path / "pipeline.py")
        assert path.read_text() == description.source

    def test_opt_level_names(self):
        assert dgen.OPT_LEVEL_NAMES[dgen.OPT_UNOPTIMIZED] == "unoptimized"
        assert dgen.OPT_LEVEL_NAMES[dgen.OPT_SCC] == "scc_propagation"
        assert dgen.OPT_LEVEL_NAMES[dgen.OPT_SCC_INLINE] == "scc_propagation_and_inlining"
