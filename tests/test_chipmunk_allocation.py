"""Unit tests for the grid allocator (MachineCodeBuilder)."""

import pytest

from repro import atoms, dgen
from repro.chipmunk import MachineCodeBuilder
from repro.dsim import RMTSimulator
from repro.errors import AllocationError
from repro.hardware import PipelineSpec
from repro.machine_code import naming


def pipeline(depth=1, width=2, stateful="pred_raw", stateless="stateless_full"):
    return PipelineSpec(
        depth=depth,
        width=width,
        stateful_alu=atoms.get_atom(stateful),
        stateless_alu=atoms.get_atom(stateless),
        name="allocation_test",
    )


def simulate(spec, machine_code, inputs, initial_state=None):
    description = dgen.generate(spec, machine_code, opt_level=2)
    return RMTSimulator(description, initial_state=initial_state).run(inputs)


class TestBuilderBasics:
    def test_builder_starts_complete(self):
        spec = pipeline()
        machine_code = MachineCodeBuilder(spec).build()
        assert spec.validate_machine_code(machine_code) == []

    def test_unconfigured_pipeline_is_passthrough(self):
        spec = pipeline()
        machine_code = MachineCodeBuilder(spec).build()
        result = simulate(spec, machine_code, [[7, 8], [9, 10]])
        assert result.outputs == [(7, 8), (9, 10)]

    def test_set_hole_unknown_name_rejected(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).set_hole(0, naming.STATEFUL, 0, "not_a_hole", 1)

    def test_input_mux_out_of_range_container(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).input_mux(0, naming.STATEFUL, 0, 0, container=9)

    def test_input_mux_unknown_stage(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).input_mux(5, naming.STATEFUL, 0, 0, container=0)

    def test_route_output_requires_slot_with_kind(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).route_output(0, 0, kind=naming.STATEFUL, slot=None)

    def test_route_output_passthrough(self):
        spec = pipeline()
        builder = MachineCodeBuilder(spec)
        builder.route_output(0, 1, kind=naming.STATEFUL, slot=0)
        builder.route_output(0, 1)  # back to passthrough
        assert builder.build()[naming.output_mux_name(0, 1)] == spec.passthrough_value

    def test_bad_operand_source_rejected(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).configure_raw(0, 0, use_state=True, rhs=("bogus", 1))

    def test_bad_operator_symbols_rejected(self):
        builder = MachineCodeBuilder(pipeline())
        with pytest.raises(AllocationError):
            builder.configure_pred_raw(0, 0, cond=("~", True, ("const", 0)), update=("+", True, ("const", 1)))
        with pytest.raises(AllocationError):
            builder.configure_pred_raw(0, 0, cond=("<", True, ("const", 0)), update=("^", True, ("const", 1)))


class TestStatelessConfiguration:
    def test_arith_mode(self):
        spec = pipeline()
        builder = MachineCodeBuilder(spec)
        builder.configure_stateless_full(0, 0, mode="arith", op="+", a=("pkt", 0), b=("pkt", 1),
                                         input_containers=[0, 1])
        builder.route_output(0, 0, kind=naming.STATELESS, slot=0)
        result = simulate(spec, builder.build(), [[3, 4]])
        assert result.outputs == [(7, 4)]

    def test_rel_mode_with_const(self):
        spec = pipeline()
        builder = MachineCodeBuilder(spec)
        builder.configure_stateless_full(0, 1, mode="rel", op=">", a=("pkt", 0), b=("const", 5),
                                         input_containers=[1, 1])
        builder.route_output(0, 0, kind=naming.STATELESS, slot=1)
        result = simulate(spec, builder.build(), [[0, 9], [0, 3]])
        assert result.outputs == [(1, 9), (0, 3)]

    def test_subtraction(self):
        spec = pipeline()
        builder = MachineCodeBuilder(spec)
        builder.configure_stateless_full(0, 0, mode="arith", op="-", a=("pkt", 0), b=("const", 10),
                                         input_containers=[0, 0])
        builder.route_output(0, 1, kind=naming.STATELESS, slot=0)
        result = simulate(spec, builder.build(), [[25, 0]])
        assert result.outputs == [(25, 15)]

    def test_invalid_mode_rejected(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).configure_stateless_full(
                0, 0, mode="logic", op="+", a=("pkt", 0), b=("pkt", 1)
            )

    def test_invalid_operand_index_rejected(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline()).configure_stateless_full(
                0, 0, mode="arith", op="+", a=("pkt", 5), b=("pkt", 1)
            )


class TestStatefulConfiguration:
    def test_raw_accumulator(self):
        spec = pipeline(stateful="raw")
        builder = MachineCodeBuilder(spec)
        builder.configure_raw(0, 0, use_state=True, rhs=("pkt", 0), input_containers=[0, 0])
        builder.route_output(0, 1, kind=naming.STATEFUL, slot=0)
        result = simulate(spec, builder.build(), [[5, 0], [6, 0], [7, 0]])
        assert [outputs[1] for outputs in result.outputs] == [0, 5, 11]

    def test_if_else_raw_wrapping_counter(self):
        spec = pipeline(stateful="if_else_raw", width=1)
        builder = MachineCodeBuilder(spec)
        builder.configure_if_else_raw(
            0, 0,
            cond=("==", True, ("const", 2)),
            then=(False, ("const", 0)),
            els=(True, ("const", 1)),
            input_containers=[0, 0],
        )
        builder.route_output(0, 0, kind=naming.STATEFUL, slot=0)
        result = simulate(spec, builder.build(), [[0]] * 7)
        assert [outputs[0] for outputs in result.outputs] == [0, 1, 2, 0, 1, 2, 0]

    def test_pred_raw_running_maximum(self):
        spec = pipeline(stateful="pred_raw")
        builder = MachineCodeBuilder(spec)
        builder.configure_pred_raw(
            0, 0,
            cond=("<", True, ("pkt", 0)),
            update=("+", False, ("pkt", 0)),
            input_containers=[0, 0],
        )
        builder.route_output(0, 1, kind=naming.STATEFUL, slot=0)
        result = simulate(spec, builder.build(), [[5, 0], [3, 0], [9, 0], [2, 0]])
        assert [outputs[1] for outputs in result.outputs] == [0, 5, 5, 9]

    def test_sub_decrement(self):
        spec = pipeline(stateful="sub")
        builder = MachineCodeBuilder(spec)
        builder.configure_sub(
            0, 0,
            cond=(">", True, ("const", 0)),
            then=("-", True, ("const", 3)),
            els=("+", True, ("const", 0)),
            input_containers=[0, 0],
        )
        builder.route_output(0, 0, kind=naming.STATEFUL, slot=0)
        initial = [[[7], [0]]]
        result = simulate(spec, builder.build(), [[0, 0]] * 4, initial_state=initial)
        # Old state values: 7 -> 4 -> 1 -> -2 (the last decrement takes it below
        # zero, after which the guard stops further decrements).
        assert [outputs[0] for outputs in result.outputs] == [7, 4, 1, -2]

    def test_pair_conditional_minimum_tracking(self):
        spec = pipeline(stateful="pair", width=2)
        builder = MachineCodeBuilder(spec)
        builder.configure_pair(
            0, 0,
            cond0=(0, ">", ("pkt", 1)),
            cond1=None,
            combine="&&",
            then_updates=(
                (("const", 0), "+", ("pkt", 1)),
                (("const", 0), "+", ("pkt", 0)),
            ),
            else_updates=(
                (("state", 0), "+", ("const", 0)),
                (("state", 1), "+", ("const", 0)),
            ),
            input_containers=[0, 1],
        )
        builder.route_output(0, 0, kind=naming.STATEFUL, slot=0)
        initial = [[[1000, 0], [0, 0]]]
        result = simulate(
            spec, builder.build(), [[1, 500], [2, 700], [3, 200]], initial_state=initial
        )
        assert [outputs[0] for outputs in result.outputs] == [1000, 500, 500]

    def test_pair_update_shape_checked(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline(stateful="pair")).configure_pair(
                0, 0, cond0=None, cond1=None, combine="&&",
                then_updates=((("state", 0), "+", ("const", 1)),),  # only one update
                else_updates=((("state", 0), "+", ("const", 0)), (("state", 1), "+", ("const", 0))),
            )

    def test_pair_bad_state_index_rejected(self):
        with pytest.raises(AllocationError):
            MachineCodeBuilder(pipeline(stateful="pair")).configure_pair(
                0, 0, cond0=(5, "<", ("pkt", 0)), cond1=None, combine="&&",
                then_updates=((("state", 0), "+", ("const", 0)), (("state", 1), "+", ("const", 0))),
                else_updates=((("state", 0), "+", ("const", 0)), (("state", 1), "+", ("const", 0))),
            )
