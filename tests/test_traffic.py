"""The unified traffic module serving both execution engines."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.p4 import samples
from repro.traffic import (
    PacketGenerator,
    TrafficGenerator,
    choice_field,
    constant_field,
    uniform_field,
    values_field,
)


class TestSharedSeedHandling:
    def test_phv_generator_replayable(self):
        generator = TrafficGenerator(num_containers=3, seed=9)
        assert generator.generate(5) == generator.generate(5)

    def test_packet_generator_replayable(self):
        generator = PacketGenerator(samples.simple_router(), seed=9)
        assert generator.generate(5) == generator.generate(5)

    def test_lazy_iteration_matches_generate(self):
        phv_generator = TrafficGenerator(num_containers=2, seed=4)
        assert list(phv_generator.iter_phvs(7)) == phv_generator.generate(7)
        packet_generator = PacketGenerator(samples.telemetry_pipeline(), seed=4)
        assert list(packet_generator.iter_packets(7)) == packet_generator.generate(7)

    def test_negative_counts_rejected_by_both(self):
        with pytest.raises(SimulationError):
            TrafficGenerator(num_containers=1).generate(-1)
        with pytest.raises(SimulationError):
            PacketGenerator(samples.simple_router()).generate(-1)


class TestCompatibilityShims:
    def test_dsim_and_drmt_shims_reexport_the_shared_classes(self):
        from repro.drmt import traffic as drmt_traffic
        from repro.dsim import traffic as dsim_traffic

        assert dsim_traffic.TrafficGenerator is TrafficGenerator
        assert drmt_traffic.PacketGenerator is PacketGenerator
        assert dsim_traffic.choice_field is choice_field
        assert drmt_traffic.values_field is values_field

    def test_values_field_is_choice_field_alias(self):
        import random

        rng_a, rng_b = random.Random(3), random.Random(3)
        field_a = values_field([4, 5, 6])
        field_b = choice_field([4, 5, 6])
        assert [field_a(rng_a) for _ in range(10)] == [field_b(rng_b) for _ in range(10)]


class TestFieldHelpers:
    def test_uniform_and_constant(self):
        import random

        rng = random.Random(0)
        assert all(1 <= uniform_field(1, 3)(rng) <= 3 for _ in range(10))
        assert constant_field(7)(rng) == 7

    def test_choice_field_needs_choices(self):
        with pytest.raises(SimulationError):
            choice_field([])

    def test_per_container_overrides(self):
        generator = TrafficGenerator(
            num_containers=2,
            seed=1,
            field_generators=[constant_field(9), None],
        )
        phvs = generator.generate(4)
        assert all(phv[0] == 9 for phv in phvs)

    def test_packet_overrides_and_metadata_default(self):
        generator = PacketGenerator(
            samples.simple_router(),
            seed=1,
            field_overrides={"ipv4.srcAddr": values_field([42])},
            metadata_default=3,
        )
        packets = generator.generate(5)
        assert all(packet["ipv4.srcAddr"] == 42 for packet in packets)
        assert all(packet["meta.egress_port"] == 3 for packet in packets)
