"""Tests for the time-travel debugger (recording, cursor, breakpoints, tracing)."""

import pytest

from repro import dgen
from repro.debugger import (
    TimeTravelDebugger,
    container_breakpoint,
    phv_exit_breakpoint,
    record_execution,
    state_breakpoint,
)
from repro.errors import SimulationError
from repro.programs import get_program


@pytest.fixture(scope="module")
def sampling_recording():
    program = get_program("sampling")
    description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
    inputs = [[i] for i in range(15)]
    return record_execution(
        description, inputs, initial_state=program.initial_pipeline_state()
    ), inputs


class TestRecording:
    def test_tick_count_includes_drain(self, sampling_recording):
        recording, inputs = sampling_recording
        assert recording.num_ticks == len(inputs) + recording.depth

    def test_every_phv_exits_with_recorded_output(self, sampling_recording):
        recording, inputs = sampling_recording
        for phv_id in range(len(inputs)):
            assert recording.exit_tick(phv_id) is not None
            assert len(recording.phv_output(phv_id)) == 1

    def test_outputs_match_plain_simulation(self, sampling_recording):
        recording, inputs = sampling_recording
        program = get_program("sampling")
        from repro.dsim import RMTSimulator

        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        plain = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)
        for phv_id, expected in enumerate(plain.outputs):
            assert tuple(recording.phv_output(phv_id)) == expected

    def test_state_series_is_the_wrapping_counter(self, sampling_recording):
        recording, _inputs = sampling_recording
        series = recording.state_series(stage=0, slot=0, state_var=0)
        assert series[:11] == [1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]

    def test_phv_journey_covers_every_stage(self, sampling_recording):
        recording, _inputs = sampling_recording
        journey = recording.phv_journey(3)
        assert [occupancy.stage for occupancy in journey] == [0, 1]

    def test_snapshot_range_checked(self, sampling_recording):
        recording, _inputs = sampling_recording
        with pytest.raises(SimulationError):
            recording.snapshot(recording.num_ticks)

    def test_describe_tick_mentions_stages_and_state(self, sampling_recording):
        recording, _inputs = sampling_recording
        text = recording.describe_tick(2)
        assert "stage 0" in text and "state[0]" in text

    def test_unknown_phv_output_rejected(self, sampling_recording):
        recording, _inputs = sampling_recording
        with pytest.raises(SimulationError):
            recording.phv_output(999)


class TestDebuggerCursor:
    def test_step_rewind_goto(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        assert debugger.at_start
        debugger.step(3)
        assert debugger.current_tick == 3
        debugger.rewind(2)
        assert debugger.current_tick == 1
        debugger.goto(5)
        assert debugger.current.tick == 5

    def test_step_clamps_at_end(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.step(10_000)
        assert debugger.at_end

    def test_rewind_clamps_at_start(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.rewind(5)
        assert debugger.at_start

    def test_goto_out_of_range_rejected(self, sampling_recording):
        recording, _inputs = sampling_recording
        with pytest.raises(SimulationError):
            TimeTravelDebugger(recording).goto(10_000)

    def test_state_at_cursor_and_describe(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.goto(9)
        assert debugger.state_at_cursor(0, 0) == [0]  # counter wrapped on the 10th packet
        assert "tick 9" in debugger.describe()


class TestBreakpoints:
    def test_state_breakpoint_forward(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.add_breakpoint(state_breakpoint(0, 0, 0, lambda value: value == 0))
        snapshot = debugger.run_forward()
        assert snapshot is not None
        # The counter wraps to 0 after the 10th packet (tick index 9).
        assert snapshot.tick == 9

    def test_container_breakpoint_catches_sample_flag(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.add_breakpoint(container_breakpoint(1, 0, lambda value: value == 1))
        snapshot = debugger.run_forward()
        assert snapshot is not None
        assert snapshot.stages[1].write[0] == 1

    def test_run_backward_finds_previous_event(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.goto(recording.num_ticks - 1)
        debugger.add_breakpoint(state_breakpoint(0, 0, 0, lambda value: value == 0))
        snapshot = debugger.run_backward()
        assert snapshot is not None and snapshot.tick == 9

    def test_run_without_breakpoints_rejected(self, sampling_recording):
        recording, _inputs = sampling_recording
        with pytest.raises(SimulationError):
            TimeTravelDebugger(recording).run_forward()

    def test_run_forward_returns_none_when_no_match(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.add_breakpoint(state_breakpoint(0, 0, 0, lambda value: value > 100))
        assert debugger.run_forward() is None

    def test_phv_exit_breakpoint_and_trace_origin(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.add_breakpoint(phv_exit_breakpoint(9))
        snapshot = debugger.run_forward()
        assert snapshot is not None and snapshot.exited == 9
        trace = debugger.trace_origin(9)
        assert any("stage 0" in line for line in trace)
        assert trace[-1].startswith("exited at tick")

    def test_clear_breakpoints(self, sampling_recording):
        recording, _inputs = sampling_recording
        debugger = TimeTravelDebugger(recording)
        debugger.add_breakpoint(phv_exit_breakpoint(1))
        debugger.clear_breakpoints()
        assert debugger.breakpoints == []


class TestRecordingLevel0:
    def test_recording_with_runtime_values(self):
        """Recording also works for unoptimised descriptions with runtime machine code."""
        program = get_program("snap_heavy_hitter")
        description = dgen.generate(program.pipeline_spec(), None, opt_level=0)
        recording = record_execution(
            description,
            [[5], [6]],
            runtime_values=program.machine_code().as_dict(),
        )
        assert recording.phv_output(1) == [1]  # old packet count after one packet


class TestFusedRecording:
    """Recording what the production (opt level 3) fast path actually runs."""

    @pytest.fixture(scope="class")
    def fused_and_tick(self):
        from repro.debugger import record_fused_execution

        program = get_program("flowlets")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=3
        )
        inputs = program.traffic_generator(seed=11).generate(30)
        fused = record_fused_execution(
            description, inputs, initial_state=program.initial_pipeline_state()
        )
        tick = record_execution(
            description, inputs, initial_state=program.initial_pipeline_state()
        )
        return fused, tick, description

    def test_one_snapshot_per_phv_stage(self, fused_and_tick):
        fused, _tick, description = fused_and_tick
        assert len(fused.snapshots) == len(fused.inputs) * description.spec.depth

    def test_snapshots_match_tick_recorder(self, fused_and_tick):
        """(PHV p, stage s) in the fused loop == tick model at tick p + s."""
        fused, tick, _description = fused_and_tick
        for snapshot in fused.snapshots:
            tick_index = snapshot.phv_id + snapshot.stage
            tick_snapshot = tick.snapshot(tick_index)
            occupancy = tick_snapshot.stage(snapshot.stage)
            assert occupancy.phv_id == snapshot.phv_id
            assert occupancy.write == snapshot.phv
            assert tick_snapshot.state[snapshot.stage] == snapshot.state

    def test_outputs_and_final_state_recorded(self, fused_and_tick):
        fused, tick, _description = fused_and_tick
        for phv_id in range(len(fused.inputs)):
            assert fused.phv_output(phv_id) == tick.phv_output(phv_id)
        assert fused.final_state is not None

    def test_journey_and_state_series_queries(self, fused_and_tick):
        fused, _tick, description = fused_and_tick
        journey = fused.phv_journey(4)
        assert [snapshot.stage for snapshot in journey] == list(
            range(description.spec.depth)
        )
        series = fused.state_series(0, 0, 0)
        assert len(series) == len(fused.inputs)

    def test_unknown_phv_rejected(self, fused_and_tick):
        fused, _tick, _description = fused_and_tick
        with pytest.raises(SimulationError):
            fused.phv_output(10_000)

    def test_requires_opt_level_3(self):
        from repro.debugger import record_fused_execution

        program = get_program("sampling")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=2
        )
        with pytest.raises(SimulationError):
            record_fused_execution(description, [[0]])

    def test_observed_and_fast_loops_agree(self):
        """The observed twin of run_trace computes identical results."""
        from repro.dsim import RMTSimulator
        from repro.engine.rmt import run_fused

        program = get_program("rcp")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=3
        )
        inputs = program.traffic_generator(seed=2).generate(50)
        fast = RMTSimulator(
            description, initial_state=program.initial_pipeline_state()
        ).run(inputs)
        observed = run_fused(
            description,
            inputs,
            None,
            program.initial_pipeline_state(),
            observer=lambda *args: None,
        )
        assert observed.outputs == fast.outputs
        assert observed.final_state == fast.final_state

    def test_fused_recording_does_not_mutate_caller_initial_state(self):
        from repro.debugger import record_fused_execution

        program = get_program("flowlets")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=3
        )
        initial = program.initial_pipeline_state()
        snapshot = [[list(alu) for alu in stage] for stage in initial]
        inputs = program.traffic_generator(seed=1).generate(20)
        first = record_fused_execution(description, inputs, initial_state=initial)
        first_final = [[list(alu) for alu in stage] for stage in first.final_state]
        second = record_fused_execution(description, inputs, initial_state=initial)
        assert initial == snapshot
        assert first.final_state == first_final
        assert second.final_state == first.final_state
