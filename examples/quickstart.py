#!/usr/bin/env python3
"""Quickstart: generate, simulate and fuzz-test one benchmark program.

This walks the core Druzhba loop end to end for the paper's running example
(the sampling transaction of Figure 1):

1. take the program's pipeline configuration (Table 1: 2 stages x 1 ALU,
   ``if_else_raw`` atom) and its compiler-produced machine code;
2. run dgen at the fully optimised level and look at the generated pipeline
   description;
3. simulate 2 000 random PHVs with dsim;
4. run the fuzzing workflow of Figure 5: the same input trace is fed to the
   high-level specification and the two output traces are compared.

Run with:  python examples/quickstart.py
"""

from repro import dgen
from repro.dsim import RMTSimulator
from repro.hardware import describe_pipeline
from repro.programs import get_program
from repro.testing import FuzzConfig, FuzzTester


def main() -> None:
    program = get_program("sampling")
    pipeline_spec = program.pipeline_spec()
    machine_code = program.machine_code()

    print("=== hardware configuration ===")
    print(describe_pipeline(pipeline_spec))
    print(f"machine code pairs: {len(machine_code)}")

    print("\n=== dgen: generated pipeline description (optimised) ===")
    description = dgen.generate(pipeline_spec, machine_code, opt_level=dgen.OPT_SCC_INLINE)
    print(f"{description.source_line_count()} non-blank lines, "
          f"{description.function_count()} functions")
    print("\n".join(description.source.splitlines()[:40]))
    print("... (truncated)")

    print("\n=== dsim: simulating 2000 random PHVs ===")
    simulator = RMTSimulator(description, initial_state=program.initial_pipeline_state())
    result = simulator.run_traffic(program.traffic_generator(seed=1), 2000)
    sampled = sum(record.outputs[0] for record in result.output_trace)
    print(f"ticks executed:   {result.ticks}")
    print(f"packets sampled:  {sampled} of 2000 (expected ~200: every 10th packet)")
    print(result.output_trace.format(limit=12))

    print("\n=== compiler-testing workflow (Figure 5) ===")
    tester = FuzzTester(
        pipeline_spec,
        program.specification(),
        config=FuzzConfig(num_phvs=2000, seed=7),
        traffic_generator=program.traffic_generator(seed=7),
        initial_state=program.initial_pipeline_state(),
    )
    outcome = tester.test(machine_code)
    print(outcome.describe())

    print("\n=== failure injection: drop the output-mux pairs (paper §5.2) ===")
    broken = machine_code.without(
        [name for name in machine_code if "output_mux" in name][:2]
    )
    print(tester.test(broken).describe())


if __name__ == "__main__":
    main()
