#!/usr/bin/env python3
"""Reproduction of the paper's case study (§5.2).

Builds a corpus of 130+ machine-code programs (the 12 Table-1 programs plus
four parametric families), injects the paper's two failure classes (missing
output-multiplexer pairs, machine code valid only for small container
values), fuzzes every program over the full 10-bit input range, and prints
the paper-vs-reproduction comparison table.

Run with:  python examples/case_study.py            (a few minutes)
           DRUZHBA_CASE_STUDY_PHVS=100 python examples/case_study.py   (faster)
"""

import os

from repro.programs.case_study import build_corpus, run_case_study


def main() -> None:
    num_phvs = int(os.environ.get("DRUZHBA_CASE_STUDY_PHVS", "300"))
    corpus = build_corpus()
    print(f"corpus size: {len(corpus)} machine-code programs "
          f"(paper: over 120), fuzzing each with {num_phvs} PHVs\n")

    result = run_case_study(num_phvs=num_phvs, entries=corpus)

    print("=== campaign summary ===")
    print(result.summary.describe())

    print("\n=== per-family results (passed / total) ===")
    for family, (passed, total) in sorted(result.per_family.items()):
        print(f"  {family:24s} {passed:3d} / {total:3d}")

    print("\n=== paper vs reproduction ===")
    for row in result.table():
        print(f"  {row['quantity']:55s} paper: {str(row['paper']):9s} reproduced: {row['reproduced']}")

    print("\nexpected failure classes matched observed classes:",
          result.expected_matches_observed())

    print("\n=== the eight injected failures in detail ===")
    for entry, outcome in zip(result.entries, result.outcomes):
        if entry.family.startswith("injected"):
            print(f"  {entry.program.name:28s} -> {outcome.describe()}")


if __name__ == "__main__":
    main()
