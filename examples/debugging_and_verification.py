#!/usr/bin/env python3
"""Time-travel debugging and bounded verification (paper §7 future work).

The paper's future-work section asks for two things beyond fuzzing: a
domain-specific time-travel debugger ("rewind pipeline simulation ticks to
past pipeline states to trace origins of erroneous behavior") and formal
equivalence between the pipeline and a high-level specification.  This
example shows the reproduction's implementation of both:

1. a deliberately *buggy* compilation of the sampling program is fuzzed; the
   counterexample PHV is then loaded into the time-travel debugger, a
   breakpoint is set on the erroneous output, and the debugger rewinds to
   show exactly which stage produced the wrong value;
2. the correct compilation is then *proven* equivalent to its specification
   over a bounded input domain, and the three dgen optimisation levels are
   proven to agree on the same domain.

Run with:  python examples/debugging_and_verification.py
"""

from repro import dgen
from repro.debugger import TimeTravelDebugger, container_breakpoint, record_execution
from repro.machine_code import naming
from repro.programs import get_program
from repro.testing import FuzzConfig, FuzzTester
from repro.verification import check_bounded_equivalence, check_optimization_equivalence


def main() -> None:
    program = get_program("sampling")
    pipeline_spec = program.pipeline_spec()
    good_machine_code = program.machine_code()

    # A "compiler bug": the stage-1 comparison constant is 8 instead of 9, so
    # the sample flag fires one packet early.
    buggy_machine_code = good_machine_code.with_pairs(
        {naming.alu_hole_name(1, naming.STATELESS, 0, "const_3"): 8}
    )

    print("=== 1. fuzzing catches the buggy compilation ===")
    tester = FuzzTester(
        pipeline_spec,
        program.specification(),
        config=FuzzConfig(num_phvs=200, seed=3),
        traffic_generator=program.traffic_generator(seed=3),
        initial_state=program.initial_pipeline_state(),
    )
    outcome = tester.test(buggy_machine_code)
    print(outcome.describe())
    counterexample = outcome.counterexample
    print(f"first mismatching PHV id: {counterexample.phv_id}")

    print("\n=== 2. time-travel debugging the counterexample ===")
    description = dgen.generate(pipeline_spec, buggy_machine_code, opt_level=2)
    inputs = program.traffic_generator(seed=3).generate(counterexample.phv_id + 1)
    recording = record_execution(
        description, inputs, initial_state=program.initial_pipeline_state()
    )
    debugger = TimeTravelDebugger(recording)
    debugger.add_breakpoint(
        container_breakpoint(1, 0, lambda value: value == 1, name="sample flag raised")
    )
    snapshot = debugger.run_forward()
    print(f"breakpoint 'sample flag raised' hit at tick {snapshot.tick}")
    print(debugger.describe())
    print("\nrewinding one tick to see the counter value that (wrongly) triggered it:")
    debugger.rewind(1)
    print(f"stage-0 counter at tick {debugger.current_tick}: {debugger.state_at_cursor(0, 0)}")
    print("\nper-stage journey of the mismatching PHV:")
    for line in debugger.trace_origin(counterexample.phv_id):
        print(f"  {line}")

    print("\n=== 3. bounded verification of the correct compilation ===")
    bounded = check_bounded_equivalence(
        pipeline_spec,
        good_machine_code,
        program.specification(),
        value_domain=[0, 1],
        trace_length=5,
        initial_state=program.initial_pipeline_state(),
    )
    print(bounded.describe())

    agreement = check_optimization_equivalence(
        pipeline_spec,
        good_machine_code,
        value_domain=[0, 7],
        trace_length=4,
        initial_state=program.initial_pipeline_state(),
    )
    print(agreement.describe())

    print("\n=== 4. and the same check refutes the buggy compilation ===")
    refuted = check_bounded_equivalence(
        pipeline_spec,
        buggy_machine_code,
        program.specification(),
        value_domain=[0],
        trace_length=9,
        initial_state=program.initial_pipeline_state(),
    )
    print(refuted.describe())


if __name__ == "__main__":
    main()
