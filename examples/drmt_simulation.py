#!/usr/bin/env python3
"""dRMT simulation end to end (paper §4).

Takes the bundled P4-14-like "simple router" program through the dRMT flow:

1. dgen parses the program, extracts the table-dependency DAG and runs the
   dRMT scheduler under explicit hardware constraints;
2. the table store is populated from the table-entry configuration format;
3. dsim dispatches randomly generated packets to match+action processors in
   round-robin order and executes matches and actions at their scheduled
   cycles;
4. the run is repeated with more processors to show the throughput scaling
   the disaggregated design is built for.

Run with:  python examples/drmt_simulation.py
"""

from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle, validate_schedule
from repro.drmt.traffic import PacketGenerator, values_field
from repro.p4 import build_dependency_graph, samples


def traffic(program, seed: int) -> PacketGenerator:
    """Traffic whose addresses actually hit the installed table entries."""
    return PacketGenerator(
        program,
        seed=seed,
        field_overrides={
            "ipv4.srcAddr": values_field([42, 77, 5, 9]),
            "ipv4.dstAddr": values_field([167772161, 3232235777, 12345]),
            "ipv4.protocol": values_field([6, 17]),
        },
    )


def main() -> None:
    program = samples.simple_router()
    graph = build_dependency_graph(program)

    print("=== dRMT dgen: dependency analysis and scheduling ===")
    for processors in (1, 2, 4):
        hardware = DrmtHardwareParams(num_processors=processors, ticks_per_match=2, ticks_per_action=1)
        bundle = generate_bundle(program, hardware)
        violations = validate_schedule(bundle.schedule, program, graph)
        print(f"\n--- {processors} processor(s) ---")
        print(bundle.describe())
        print(bundle.schedule.describe())
        print(f"schedule constraint violations: {violations or 'none'}")

        simulator = DRMTSimulator(bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_packets(traffic(program, seed=4).generate(200))
        print(result.describe(limit=3))
        print(f"flow_counter register: {result.register_dump['flow_counter'][:8]}")


if __name__ == "__main__":
    main()
