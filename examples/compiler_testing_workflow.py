#!/usr/bin/env python3
"""The full compiler-testing workflow of Figure 5, with a synthesis-based compiler.

This example plays both roles of the paper's case study (§5.2):

* the *compiler under test* is the Chipmunk-style synthesis compiler
  (:mod:`repro.chipmunk`): it takes a Domino packet transaction, builds a
  sketch over the pipeline's machine-code holes, and searches for hole values
  that make the pipeline match the program;
* the *testing tool* is Druzhba: the synthesised machine code is run through
  dgen + dsim on random PHVs and its output trace is compared against the
  Domino program's own output trace.

Two compilations are shown: a healthy one, and one synthesised with an
artificially narrow input range that reproduces the paper's
"machine code that only satisfied a limited range of values" failure class.

Run with:  python examples/compiler_testing_workflow.py
"""

from repro import atoms
from repro.chipmunk import ChipmunkCompiler, SynthesisConfig
from repro.domino import DominoSpecification, PacketLayout, parse_and_analyze
from repro.hardware import PipelineSpec
from repro.machine_code import naming
from repro.testing import FuzzConfig, FuzzTester

#: A Domino packet transaction: accumulate the packet's value into switch
#: state and expose the running total *before* this packet.
ACCUMULATOR_SOURCE = """
state total = 0;

transaction accumulator {
    pkt.total_out = total;
    total = total + pkt.value;
}
"""


def build_pipeline() -> PipelineSpec:
    """A 1x1 pipeline with the raw atom — the natural target for an accumulator."""
    return PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_arith"),
        name="accumulator",
    )


def frozen_routing(spec: PipelineSpec) -> dict:
    """Routing decisions the front end has already made (kept out of the search).

    The input multiplexers feed container 0 into both ALU operands and the
    output multiplexer forwards the stateful ALU's output; only the stateful
    ALU's own holes are left for the synthesiser.
    """
    freeze = {
        naming.input_mux_name(0, naming.STATEFUL, 0, 0): 0,
        naming.input_mux_name(0, naming.STATEFUL, 0, 1): 0,
        naming.input_mux_name(0, naming.STATELESS, 0, 0): 0,
        naming.input_mux_name(0, naming.STATELESS, 0, 1): 0,
        naming.output_mux_name(0, 0): spec.output_mux_value_for(naming.STATEFUL, 0),
    }
    return freeze


def main() -> None:
    program = parse_and_analyze(ACCUMULATOR_SOURCE)
    layout = PacketLayout(container_fields=["value"], output_fields=["total_out"])
    spec = build_pipeline()
    freeze = frozen_routing(spec)
    search = [
        naming.alu_hole_name(0, naming.STATEFUL, 0, hole)
        for hole in atoms.get_atom("raw").holes
    ]

    print("=== compiling the Domino accumulator with the synthesis compiler ===")
    compiler = ChipmunkCompiler(spec, SynthesisConfig(seed=1))
    result = compiler.compile_domino(
        program, layout, freeze=freeze, search_names=search, validate=True
    )
    print(f"synthesis success:      {result.synthesis.success}")
    print(f"CEGIS iterations:       {result.synthesis.iterations}")
    print(f"candidates evaluated:   {result.synthesis.candidates_evaluated}")
    print(f"post-compile fuzzing:   {result.fuzz_outcome.describe()}")
    print("synthesised ALU holes:")
    for name in search:
        print(f"  {name} = {result.machine_code[name]}")

    print("\n=== reproducing the limited-value-range failure (paper §5.2) ===")
    # A threshold program synthesised only against tiny inputs: the constant it
    # needs (200) never appears in training, so the synthesiser converges on
    # machine code that is only right for small packet values.
    threshold_source = """
    transaction threshold {
        if (pkt.value > 200) {
            pkt.big = 1;
        } else {
            pkt.big = 0;
        }
    }
    """
    threshold_spec = PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_rel"),
        name="threshold",
    )
    threshold_layout = PacketLayout(container_fields=["value"], output_fields=["big"])
    narrow_config = SynthesisConfig(
        seed=2,
        example_max_value=20,   # synthesis never sees a value above 20 ...
        verify_max_value=20,    # ... and never verifies beyond it either
        max_iterations=2,
    )
    narrow_freeze = {
        naming.input_mux_name(0, naming.STATELESS, 0, 0): 0,
        naming.input_mux_name(0, naming.STATELESS, 0, 1): 0,
        naming.input_mux_name(0, naming.STATEFUL, 0, 0): 0,
        naming.input_mux_name(0, naming.STATEFUL, 0, 1): 0,
        naming.output_mux_name(0, 0): threshold_spec.output_mux_value_for(naming.STATELESS, 0),
    }
    narrow_search = [
        naming.alu_hole_name(0, naming.STATELESS, 0, hole)
        for hole in atoms.get_atom("stateless_rel").holes
    ]
    narrow_compiler = ChipmunkCompiler(threshold_spec, narrow_config)
    narrow_result = narrow_compiler.compile_domino(
        threshold_source,
        threshold_layout,
        constant_pool=[0, 1, 5, 20],  # the needed constant (200) is unavailable
        freeze=narrow_freeze,
        search_names=narrow_search,
    )
    print(f"synthesis reported success on its narrow range: {narrow_result.synthesis.success}")

    tester = FuzzTester(
        threshold_spec,
        DominoSpecification.from_source(threshold_source, threshold_layout),
        config=FuzzConfig(num_phvs=1000, seed=11),
    )
    outcome = tester.test(narrow_result.machine_code)
    print(f"Druzhba fuzzing over the full 10-bit range: {outcome.describe()}")


if __name__ == "__main__":
    main()
