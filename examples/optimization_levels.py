#!/usr/bin/env python3
"""Figure 6 reproduction: the optimisation levels of dgen.

Generates the pipeline description of a small pipeline at the unoptimised
level, with sparse conditional constant (SCC) propagation, with SCC
propagation plus function inlining, and at the fused level (this
reproduction's opt level 3, where the whole trace loop is generated code),
prints the sources side by side (code-size metrics included), and times a
short simulation at each level — the per-program version of the paper's
Table 1 measurement.

Run with:  python examples/optimization_levels.py
"""

import time

from repro import atoms, dgen
from repro.chipmunk import MachineCodeBuilder
from repro.dsim import RMTSimulator, TrafficGenerator
from repro.hardware import PipelineSpec
from repro.machine_code import naming

NUM_PHVS = 20_000


def build_configuration() -> tuple:
    """A 1x1 pipeline whose stateful ALU accumulates the packet value."""
    spec = PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_arith"),
        name="figure6",
    )
    builder = MachineCodeBuilder(spec)
    builder.configure_raw(stage=0, slot=0, use_state=True, rhs=("pkt", 0), input_containers=[0, 0])
    builder.route_output(stage=0, container=0, kind=naming.STATEFUL, slot=0)
    return spec, builder.build()


def main() -> None:
    spec, machine_code = build_configuration()

    descriptions = {}
    for level in dgen.OPT_LEVELS:
        descriptions[level] = dgen.generate(spec, machine_code, opt_level=level)

    print("=== generated code at each optimisation level (Figure 6 + fused) ===")
    for level, description in descriptions.items():
        print(f"\n--- version {level + 1}: {description.opt_level_name} "
              f"({description.source_line_count()} lines, "
              f"{description.function_count()} functions) ---")
        print(description.source)

    print("=== simulation runtime comparison ===")
    traffic = TrafficGenerator(num_containers=spec.width, seed=3)
    inputs = traffic.generate(NUM_PHVS)
    timings = {}
    for level, description in descriptions.items():
        simulator = RMTSimulator(description)
        start = time.perf_counter()
        simulator.run(inputs)
        timings[level] = (time.perf_counter() - start) * 1000.0
    for level, elapsed in timings.items():
        print(f"opt level {level} ({dgen.OPT_LEVEL_NAMES[level]:>30s}): {elapsed:8.1f} ms "
              f"for {NUM_PHVS} PHVs")
    speedup = timings[0] / timings[2] if timings[2] else float("inf")
    print(f"\nspeedup of SCC propagation + inlining over unoptimised: {speedup:.2f}x")
    fused_speedup = timings[2] / timings[dgen.OPT_FUSED] if timings.get(dgen.OPT_FUSED) else float("inf")
    print(f"speedup of the fused trace loop over SCC + inlining:    {fused_speedup:.2f}x")


if __name__ == "__main__":
    main()
